// Fault-injection subsystem tests: schedule validation, the no-op
// guarantee of an empty schedule, each fault kind end to end through the
// DES, and the agent's graceful-degradation machinery (gap accounting,
// SYN/ACK-collapse gating, tap-outage quarantine, stalled timers).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <variant>
#include <vector>

#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/fault/chaos.hpp"
#include "syndog/fault/schedule.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/rng.hpp"

namespace syndog {
namespace {

using fault::FaultKind;
using fault::FaultSchedule;
using fault::FaultSpec;
using fault::FaultTarget;
using util::SimTime;

constexpr double kT0Seconds = 20.0;

/// Poisson outbound background at `rate` conn/s for `minutes` minutes.
std::vector<SimTime> background_starts(double rate, int minutes,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < minutes * 60.0) {
    t += rng.exponential_mean(1.0 / rate);
    starts.push_back(SimTime::from_seconds(t));
  }
  return starts;
}

/// A small live site: 3 conn/s from 10 hosts, ~57 SYN/ACKs per period.
sim::StubNetworkParams small_site_params() {
  sim::StubNetworkParams params;
  params.num_hosts = 10;
  params.cloud.no_answer_probability = 0.05;
  params.seed = 21;
  return params;
}

// --- schedule validation ----------------------------------------------------

TEST(FaultScheduleTest, BuildersValidate) {
  FaultSchedule sched;
  sched.link_flap(FaultTarget::kDownlink, SimTime::seconds(10),
                  SimTime::seconds(20))
      .burst_loss(FaultTarget::kUplink, SimTime::seconds(5),
                  SimTime::seconds(30), 0.2)
      .duplication(FaultTarget::kDownlink, SimTime::zero(),
                   SimTime::seconds(1), 0.5)
      .delay_jitter(FaultTarget::kDownlink, SimTime::zero(),
                    SimTime::seconds(1), SimTime::milliseconds(50))
      .tap_outage(SimTime::seconds(40), SimTime::seconds(60))
      .asymmetric_route(SimTime::seconds(40), SimTime::seconds(60), 0.3);
  EXPECT_EQ(sched.size(), 6u);
  EXPECT_FALSE(sched.empty());

  // Empty window.
  EXPECT_THROW(FaultSchedule{}.link_flap(FaultTarget::kUplink,
                                         SimTime::seconds(5),
                                         SimTime::seconds(5)),
               std::invalid_argument);
  // Probability outside (0,1].
  EXPECT_THROW(FaultSchedule{}.burst_loss(FaultTarget::kUplink,
                                          SimTime::zero(),
                                          SimTime::seconds(1), 1.5),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule{}.duplication(FaultTarget::kUplink,
                                           SimTime::zero(),
                                           SimTime::seconds(1), 0.0),
               std::invalid_argument);
  // Jitter without a bound.
  FaultSpec bad;
  bad.kind = FaultKind::kDelayJitter;
  bad.end = SimTime::seconds(1);
  EXPECT_THROW(FaultSchedule{}.add(bad), std::invalid_argument);
  // Router fault aimed at a link and vice versa.
  FaultSpec tap;
  tap.kind = FaultKind::kTapOutage;
  tap.target = FaultTarget::kDownlink;
  tap.end = SimTime::seconds(1);
  EXPECT_THROW(FaultSchedule{}.add(tap), std::invalid_argument);
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.target = FaultTarget::kRouter;
  flap.end = SimTime::seconds(1);
  EXPECT_THROW(FaultSchedule{}.add(flap), std::invalid_argument);
}

// --- empty schedule is a strict no-op ---------------------------------------

struct ScenarioResult {
  std::vector<core::PeriodReport> history;
  std::uint64_t uplink_delivered = 0;
  std::uint64_t downlink_delivered = 0;
  std::uint64_t out_sniffed = 0;
  std::uint64_t in_sniffed = 0;
};

ScenarioResult run_scenario(bool with_empty_controller) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  std::optional<fault::ChaosController> chaos;
  if (with_empty_controller) {
    chaos.emplace(network, FaultSchedule{}, 99);
    EXPECT_FALSE(chaos->attached());
  }
  network.schedule_outbound_background(background_starts(3.0, 6, 33));
  network.run_until(SimTime::minutes(6));
  ScenarioResult r;
  r.history = agent.history();
  r.uplink_delivered = network.uplink().delivered();
  r.downlink_delivered = network.downlink().delivered();
  r.out_sniffed = agent.outbound_sniffer().lifetime_count();
  r.in_sniffed = agent.inbound_sniffer().lifetime_count();
  return r;
}

TEST(ChaosControllerTest, EmptyScheduleChangesNothing) {
  const ScenarioResult base = run_scenario(false);
  const ScenarioResult chaos = run_scenario(true);
  ASSERT_EQ(base.history.size(), chaos.history.size());
  for (std::size_t i = 0; i < base.history.size(); ++i) {
    EXPECT_EQ(base.history[i].syn_count, chaos.history[i].syn_count) << i;
    EXPECT_EQ(base.history[i].syn_ack_count, chaos.history[i].syn_ack_count)
        << i;
    EXPECT_EQ(base.history[i].y, chaos.history[i].y) << i;
  }
  EXPECT_EQ(base.uplink_delivered, chaos.uplink_delivered);
  EXPECT_EQ(base.downlink_delivered, chaos.downlink_delivered);
  EXPECT_EQ(base.out_sniffed, chaos.out_sniffed);
  EXPECT_EQ(base.in_sniffed, chaos.in_sniffed);
}

// --- link flap: transient outage must not alarm ----------------------------

TEST(ChaosControllerTest, ThreePeriodLinkFlapWithoutAttackNeverAlarms) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  // Downlink dead for exactly 3 observation periods, aligned to the
  // period grid: SYN/ACKs vanish while outgoing SYNs continue.
  FaultSchedule sched;
  sched.link_flap(FaultTarget::kDownlink, SimTime::seconds(120),
                  SimTime::seconds(180));
  fault::ChaosController chaos(network, std::move(sched), 7);
  network.schedule_outbound_background(background_starts(3.0, 10, 33));
  network.run_until(SimTime::minutes(10));

  EXPECT_FALSE(agent.ever_alarmed());
  // The flapped periods were gap-accounted, not fed as fake evidence.
  EXPECT_GE(agent.detector().gap_periods(), 2);
  EXPECT_LE(agent.detector().gap_periods(), 4);
  EXPECT_GT(network.downlink().dropped_link_down(), 0u);
  // The agent degraded during the flap and healed afterwards.
  EXPECT_EQ(agent.health(), core::AgentHealth::kHealthy);
  // Gap periods are absent from the fed history but the indices advance.
  const auto& hist = agent.history();
  ASSERT_FALSE(hist.empty());
  EXPECT_EQ(hist.back().period_index + 1,
            agent.detector().periods_observed());
}

// --- sustained loss: detection must survive a degraded first mile -----------

TEST(ChaosControllerTest, DetectsFloodThroughSustainedTwentyPercentLoss) {
  sim::StubNetworkParams params = small_site_params();
  sim::StubNetworkSim network(params);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  FaultSchedule sched;
  sched.burst_loss(FaultTarget::kDownlink, SimTime::zero(),
                   SimTime::minutes(12), 0.2);
  fault::ChaosController chaos(network, std::move(sched), 7);
  network.schedule_outbound_background(background_starts(3.0, 12, 33));

  // Table-2 floor-rate flood (37 SYN/s) from host 4, starting at min 6.
  attack::FloodSpec flood;
  flood.rate = 37.0;
  flood.start = SimTime::minutes(6);
  flood.duration = SimTime::minutes(6);
  util::Rng flood_rng(41);
  network.launch_flood(4, attack::generate_flood_times(flood, flood_rng),
                       net::Ipv4Address(198, 51, 100, 7), 80,
                       *net::Ipv4Prefix::parse("203.0.113.0/24"));
  network.run_until(SimTime::minutes(12));

  ASSERT_TRUE(agent.ever_alarmed());
  const std::int64_t onset =
      static_cast<std::int64_t>(6 * 60 / kT0Seconds);
  EXPECT_GE(agent.first_alarm_period(), onset);
  EXPECT_LE(agent.first_alarm_period(), onset + 6);
  for (const core::PeriodReport& r : agent.history()) {
    if (r.period_index < onset) {
      EXPECT_FALSE(r.alarm) << "false alarm at period " << r.period_index;
    }
  }
  EXPECT_GT(network.downlink().dropped_chaos_loss(), 0u);
}

// --- duplication + jitter: noisy but benign --------------------------------

TEST(ChaosControllerTest, DuplicationAndJitterDoNotFalseAlarm) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  FaultSchedule sched;
  sched.duplication(FaultTarget::kDownlink, SimTime::minutes(2),
                    SimTime::minutes(6), 0.15);
  sched.delay_jitter(FaultTarget::kDownlink, SimTime::minutes(2),
                     SimTime::minutes(6), SimTime::milliseconds(200));
  fault::ChaosController chaos(network, std::move(sched), 7);
  network.schedule_outbound_background(background_starts(3.0, 8, 33));
  network.run_until(SimTime::minutes(8));

  // Duplicated SYN/ACKs only push Δn further negative; the clamp keeps
  // that from banking credit, and no alarm may fire either way.
  EXPECT_FALSE(agent.ever_alarmed());
  EXPECT_GT(network.downlink().duplicated(), 0u);
  EXPECT_GT(network.downlink().delayed(), 0u);
  for (const core::PeriodReport& r : agent.history()) {
    ASSERT_TRUE(std::isfinite(r.x));
    ASSERT_TRUE(std::isfinite(r.y));
  }
}

// --- tap outage: blind periods, quarantine, recovery ------------------------

TEST(ChaosControllerTest, TapOutageIsGapAccountedAndQuarantined) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  obs::Registry registry;
  obs::EventTracer tracer;
  agent.attach_observer(&tracer, registry);

  FaultSchedule sched;
  sched.tap_outage(SimTime::seconds(120), SimTime::seconds(160));
  fault::ChaosController chaos(network, std::move(sched), 7);
  chaos.attach_observer(&registry, &tracer);
  chaos.set_outage_listener([&agent](SimTime, bool active) {
    agent.notify_sniffer_outage(active);
  });
  network.schedule_outbound_background(background_starts(3.0, 8, 33));

  bool saw_blind = false;
  network.scheduler().schedule_at(SimTime::seconds(130), [&] {
    saw_blind = agent.health() == core::AgentHealth::kBlind;
  });
  network.run_until(SimTime::minutes(8));

  EXPECT_TRUE(saw_blind);
  EXPECT_FALSE(agent.ever_alarmed());
  // Three rollovers overlap the outage: the window-open edge fires just
  // before the t=120 rollover (earlier insertion wins the tie), and the
  // rollover after the window closes discards its partial harvest too.
  EXPECT_EQ(agent.blind_periods(), 3);
  EXPECT_EQ(agent.recoveries(), 1);
  EXPECT_GE(agent.detector().gap_periods(), 3);
  EXPECT_EQ(agent.quarantine_remaining(), 0);
  EXPECT_EQ(agent.health(), core::AgentHealth::kHealthy);
  EXPECT_GT(network.router().stats().tap_suppressed, 0u);

  // Telemetry: both fault edges and the health transitions were recorded.
  EXPECT_EQ(registry.counter("fault.edges").value(), 2u);
  int fault_edges = 0;
  int health_transitions = 0;
  tracer.for_each([&](const obs::Event& e) {
    if (std::holds_alternative<obs::FaultEdge>(e.payload)) ++fault_edges;
    if (std::holds_alternative<obs::HealthTransition>(e.payload)) {
      ++health_transitions;
    }
  });
  EXPECT_EQ(fault_edges, 2);
  EXPECT_GE(health_transitions, 2);  // -> blind, -> degraded, -> healthy
}

// --- asymmetric routing: tolerated below the drift budget -------------------

TEST(ChaosControllerTest, MildAsymmetricRoutingIsToleratedAndCounted) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  FaultSchedule sched;
  sched.asymmetric_route(SimTime::minutes(2), SimTime::minutes(8), 0.1);
  fault::ChaosController chaos(network, std::move(sched), 7);
  network.schedule_outbound_background(background_starts(3.0, 8, 33));
  network.run_until(SimTime::minutes(8));

  // 10% of returning SYN/ACKs dodge the monitored interface: a steady
  // +0.1 drift on Xn, well inside the paper's a = 0.35 budget.
  EXPECT_FALSE(agent.ever_alarmed());
  EXPECT_GT(chaos.diverted_syn_acks(), 0u);
  EXPECT_EQ(network.router().stats().inbound_tap_bypassed,
            chaos.diverted_syn_acks());
}

// --- stalled period timer ---------------------------------------------------

TEST(SynDogAgentTest, StalledTimerIsGapAccountedAndRescaled) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  network.schedule_outbound_background(background_starts(3.0, 8, 33));
  // Suspend the agent process across 3.5 periods: the first rollover only
  // happens at t = 70 s.
  agent.stall_until(SimTime::seconds(70));
  network.run_until(SimTime::minutes(8));

  EXPECT_FALSE(agent.ever_alarmed());
  EXPECT_EQ(agent.detector().gap_periods(), 3);
  ASSERT_FALSE(agent.history().empty());
  // The smeared harvest was rescaled to one period's worth, so the first
  // fed report is the same order of magnitude as a normal period.
  const core::PeriodReport& first = agent.history().front();
  EXPECT_EQ(first.period_index, 3);
  EXPECT_LT(first.syn_count, 2 * 3 * 20);  // ~60/period, not ~210
  for (const core::PeriodReport& r : agent.history()) {
    ASSERT_TRUE(std::isfinite(r.x));
    ASSERT_TRUE(std::isfinite(r.y));
  }
  EXPECT_EQ(agent.health(), core::AgentHealth::kHealthy);
}

}  // namespace
}  // namespace syndog
