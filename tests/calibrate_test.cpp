// Round-trip calibration: profile a site's counts, synthesize a spec
// from the profile, regenerate, and re-profile — the loop must close.
#include <gtest/gtest.h>

#include "syndog/attack/flood.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/trace/calibrate.hpp"
#include "syndog/trace/periods.hpp"

namespace syndog::trace {
namespace {

SiteProfile profile_of(const SiteSpec& spec, std::uint64_t seed) {
  const PeriodSeries ps =
      extract_periods(generate_site_trace(spec, seed), kObservationPeriod);
  return profile_counts(ps.out_syn, ps.in_syn_ack);
}

TEST(CalibrateTest, ProfileMatchesKnownSiteStatistics) {
  SiteSpec unc = site_spec(SiteId::kUnc);
  unc.disruptions_per_hour = 0.0;
  const SiteProfile profile = profile_of(unc, 42);
  EXPECT_NEAR(profile.k_bar, unc.expected_syn_ack_per_period,
              unc.expected_syn_ack_per_period * 0.1);
  EXPECT_NEAR(profile.c, unc.expected_c, 0.01);
  EXPECT_GT(profile.x_sigma, 0.0);
  EXPECT_NEAR(profile.floor_universal,
              (0.35 - profile.c) * profile.k_bar / 20.0, 1e-9);
  // Recommended parameters sit between c and the universal offset.
  EXPECT_GT(profile.recommended_a, profile.c);
  EXPECT_LE(profile.recommended_a, 0.35);
  EXPECT_NEAR(profile.recommended_threshold, 3 * profile.recommended_a,
              1e-12);
}

TEST(CalibrateTest, RoundTripClosesTheLoop) {
  // Original site -> counts -> profile -> synthetic spec -> counts ->
  // profile: level, imbalance, and burstiness must survive the trip.
  SiteSpec original = site_spec(SiteId::kAuckland);
  original.disruptions_per_hour = 0.0;
  const SiteProfile first = profile_of(original, 7);

  const SiteSpec rebuilt = spec_from_profile(first, original.duration);
  const SiteProfile second = profile_of(rebuilt, 8);

  EXPECT_NEAR(second.k_bar, first.k_bar, first.k_bar * 0.15);
  EXPECT_NEAR(second.c, first.c, 0.015);
  EXPECT_NEAR(second.k_cv, first.k_cv, first.k_cv * 0.5 + 0.05);
  // And the detection floors agree within ~20%.
  EXPECT_NEAR(second.floor_universal, first.floor_universal,
              first.floor_universal * 0.2);
}

TEST(CalibrateTest, CalibratedSpecDrivesDetectionLikeTheOriginal) {
  // A flood at 3x the floor must be caught on traces from the rebuilt
  // spec just as on the original's.
  SiteSpec original = site_spec(SiteId::kAuckland);
  original.disruptions_per_hour = 0.0;
  const SiteProfile profile = profile_of(original, 9);
  const SiteSpec rebuilt = spec_from_profile(profile, original.duration);

  PeriodSeries ps = extract_periods(generate_site_trace(rebuilt, 10),
                                    kObservationPeriod);
  attack::FloodSpec flood;
  flood.rate = 3.0 * profile.floor_universal;
  flood.start = util::SimTime::minutes(30);
  util::Rng rng(11);
  ps.add_outbound_syns(bucket_times(
      attack::generate_flood_times(flood, rng), ps.period, ps.size()));
  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
  const std::int64_t onset = flood.start / ps.period;
  std::int64_t alarm = -1;
  for (const auto& r : reports) {
    if (r.alarm && alarm < 0) alarm = r.period_index;
  }
  ASSERT_GE(alarm, onset);  // and no earlier false alarm
  EXPECT_LE(alarm, onset + 8);
}

TEST(CalibrateTest, Validation) {
  EXPECT_THROW((void)profile_counts({1}, {1}), std::invalid_argument);
  EXPECT_THROW((void)profile_counts({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)profile_counts({1, 2}, {1, 2},
                                    util::SimTime::zero()),
               std::invalid_argument);
  SiteProfile empty;
  EXPECT_THROW((void)spec_from_profile(empty, util::SimTime::minutes(5)),
               std::invalid_argument);
}

TEST(CalibrateTest, HandlesZeroImbalanceSites) {
  // A perfect site (every SYN answered): c = 0, loss 0.
  std::vector<std::int64_t> syns(50, 200);
  std::vector<std::int64_t> acks(50, 200);
  const SiteProfile profile = profile_counts(syns, acks);
  EXPECT_DOUBLE_EQ(profile.c, 0.0);
  EXPECT_DOUBLE_EQ(profile.x_sigma, 0.0);
  const SiteSpec spec =
      spec_from_profile(profile, util::SimTime::minutes(30));
  EXPECT_DOUBLE_EQ(spec.handshake.no_answer_probability, 0.0);
  EXPECT_NEAR(spec.outbound_rate, 10.0, 0.1);  // 200 per 20 s
}

}  // namespace
}  // namespace syndog::trace
