// CampaignSim contract tests.
//
// Four suites, mirroring the module's design guarantees:
//  * CampaignTest — parameter validation and 1-based host indexing.
//  * CampaignOracleTest — the sharded engine against the single-loop
//    MultiStubSim oracle under the deterministic traffic profile
//    (loss=0, bandwidth=0, no_answer=0, rtt_sigma=0): identical connect
//    lists and flood timelines must yield identical per-period tables,
//    alarm timelines, and victim-side stats. (no_answer must be 0
//    because the oracle's one cloud rng interleaves draws across stubs
//    while the campaign draws from per-stub children; with every other
//    knob deterministic the remaining draws — ISNs, sports, spoofed
//    sources — cannot affect counts or timing.)
//  * CampaignThreadsTest — workers ∈ {1, 2, 8} produce byte-identical
//    state digests, merged alarms, metrics and fleet recordings.
//  * CampaignBarrierTest — randomized windows/latencies: no mailbox
//    record is ever injected with arrival before the barrier
//    (min_injection_margin() >= 0), at any worker count.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "syndog/campaign/campaign_sim.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/net/address.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/multistub.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog {
namespace {

using util::SimTime;

campaign::CampaignParams small_params() {
  campaign::CampaignParams p;
  p.stub_count = 3;
  p.hosts_per_stub = 10;
  return p;
}

TEST(CampaignTest, ValidatesParameterRanges) {
  EXPECT_NO_THROW(campaign::CampaignSim{small_params()});

  auto bad = small_params();
  bad.stub_count = 0;
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.stub_count = campaign::CampaignParams::kMaxStubs + 1;
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.hosts_per_stub = 0;
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.hosts_per_stub = 4095;  // /20 prefix: 4094 addressable hosts
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.uplink_delay = SimTime::zero();  // zero lookahead
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.window = bad.uplink_delay + bad.downlink_delay;  // > lookahead
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.victim_ip = net::Ipv4Address(10, 0, 1, 5);  // inside stub 0
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
  bad = small_params();
  bad.victim_ip = net::Ipv4Address(240, 1, 2, 3);  // inside spoof pool
  EXPECT_THROW(campaign::CampaignSim{bad}, std::invalid_argument);
}

TEST(CampaignTest, HostIndexIsOneBasedAndRangeChecked) {
  campaign::CampaignSim sim(small_params());
  // Host 1 is prefix offset 1 (offset 0 is the unaddressable base).
  EXPECT_EQ(sim.host(0, 1).ip(), sim.stub_prefix(0).host(1));
  EXPECT_EQ(sim.host(2, 10).ip(), sim.stub_prefix(2).host(10));
  EXPECT_THROW((void)sim.host(0, 0), std::out_of_range);
  EXPECT_THROW((void)sim.host(0, 11), std::out_of_range);
  EXPECT_THROW((void)sim.host(-1, 1), std::out_of_range);
  EXPECT_THROW((void)sim.host(3, 1), std::out_of_range);
  try {
    (void)sim.host(0, 0);
    FAIL() << "host(0, 0) must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("[1, 10]"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignTest, StubPrefixesAreDisjointAndOwnTheirHosts) {
  auto p = small_params();
  p.stub_count = 40;
  campaign::CampaignSim sim(p);
  for (int s = 1; s < p.stub_count; ++s) {
    EXPECT_FALSE(
        sim.stub_prefix(s).contains(sim.stub_prefix(s - 1).host(1)));
    EXPECT_FALSE(
        sim.stub_prefix(s - 1).contains(sim.stub_prefix(s).host(1)));
  }
}

// ---- Oracle equivalence ----------------------------------------------

struct Profile {
  int stubs = 3;
  std::uint32_t hosts = 10;
  SimTime lan = SimTime::microseconds(100);
  SimTime up = SimTime::milliseconds(5);
  SimTime down = SimTime::milliseconds(5);
  std::uint64_t seed = 1;
  SimTime t0 = SimTime::seconds(5);
  SimTime end = SimTime::seconds(70);
};

struct ConnectPlan {
  int stub;
  std::uint32_t host;
  SimTime at;
  net::Ipv4Address dst;
};

core::SynDogParams agent_params(const Profile& p) {
  core::SynDogParams a;
  a.observation_period = p.t0;
  return a;
}

sim::TcpHostParams victim_params() {
  sim::TcpHostParams v;
  v.backlog = 256;
  return v;
}

// The identical workload both engines replay: ~5 background conn/s per
// stub to generic servers, plus a 100 SYN/s spoofed flood per stub over
// [20 s, 50 s).
std::vector<ConnectPlan> make_background(const Profile& p) {
  util::Rng rng(99);
  std::vector<ConnectPlan> plan;
  for (int s = 0; s < p.stubs; ++s) {
    double t = 0.0;
    while (true) {
      t += rng.exponential_mean(0.2);
      if (t >= p.end.to_seconds() - 1.0) break;
      plan.push_back(
          {s,
           static_cast<std::uint32_t>(
               rng.uniform_int(1, static_cast<std::int64_t>(p.hosts))),
           SimTime::from_seconds(t),
           net::Ipv4Address(static_cast<std::uint32_t>(
               0x80000000u + rng.next_u32() % 0x20000000u))});
    }
  }
  return plan;
}

std::vector<std::vector<SimTime>> make_flood_times(const Profile& p) {
  util::Rng rng(7);
  std::vector<std::vector<SimTime>> per_stub(
      static_cast<std::size_t>(p.stubs));
  for (auto& times : per_stub) {
    double t = 20.0;
    while (true) {
      t += rng.exponential_mean(0.01);
      if (t >= 50.0) break;
      times.push_back(SimTime::from_seconds(t));
    }
  }
  return per_stub;
}

struct OracleRun {
  std::unique_ptr<sim::MultiStubSim> net;
  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  sim::TcpHost* victim = nullptr;
};

OracleRun run_oracle(const Profile& p,
                     const std::vector<ConnectPlan>& background,
                     const std::vector<std::vector<SimTime>>& floods) {
  sim::MultiStubParams mp;
  mp.stub_count = p.stubs;
  mp.hosts_per_stub = p.hosts;
  mp.lan_delay = p.lan;
  mp.uplink.delay = p.up;
  mp.downlink.delay = p.down;
  mp.cloud.no_answer_probability = 0.0;
  mp.cloud.rtt_sigma = 0.0;
  mp.seed = p.seed;
  OracleRun run;
  run.net = std::make_unique<sim::MultiStubSim>(mp);
  run.victim = &run.net->add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params());
  run.victim->listen(80);
  for (int s = 0; s < p.stubs; ++s) {
    run.agents.push_back(std::make_unique<core::SynDogAgent>(
        run.net->router(s), run.net->scheduler(), agent_params(p)));
  }
  for (const ConnectPlan& c : background) {
    sim::TcpHost* h = &run.net->host(c.stub, c.host);
    const net::Ipv4Address dst = c.dst;
    run.net->scheduler().schedule_at(c.at,
                                     [h, dst] { h->connect(dst, 80); });
  }
  for (int s = 0; s < p.stubs; ++s) {
    run.net->launch_flood(s, 1, floods[static_cast<std::size_t>(s)],
                          run.victim->ip(), 80,
                          *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  run.net->run_until(p.end);
  return run;
}

std::unique_ptr<campaign::CampaignSim> run_campaign(
    const Profile& p, const std::vector<ConnectPlan>& background,
    const std::vector<std::vector<SimTime>>& floods, int workers,
    int cells = 0) {
  campaign::CampaignParams cp;
  cp.stub_count = p.stubs;
  cp.hosts_per_stub = p.hosts;
  cp.cells = cells;
  cp.lan_delay = p.lan;
  cp.uplink_delay = p.up;
  cp.downlink_delay = p.down;
  cp.no_answer_probability = 0.0;
  cp.rtt_sigma = 0.0;
  cp.victim_params = victim_params();
  cp.agent_params = agent_params(p);
  cp.seed = p.seed;
  auto sim = std::make_unique<campaign::CampaignSim>(cp);
  for (const ConnectPlan& c : background) {
    sim->connect_background(c.stub, c.host, c.at, c.dst, 80);
  }
  for (int s = 0; s < p.stubs; ++s) {
    sim->launch_flood(s, 1, floods[static_cast<std::size_t>(s)],
                      *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  sim->run_until(p.end, workers);
  return sim;
}

TEST(CampaignOracleTest, MatchesSingleLoopOracleAtAnyWorkerCount) {
  const Profile p;
  const auto background = make_background(p);
  const auto floods = make_flood_times(p);
  ASSERT_GT(background.size(), 500u);
  ASSERT_GT(floods[0].size(), 2000u);

  const OracleRun oracle = run_oracle(p, background, floods);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto sharded = run_campaign(p, background, floods, workers);

    for (int s = 0; s < p.stubs; ++s) {
      SCOPED_TRACE("stub=" + std::to_string(s));
      const core::SynDogAgent& a =
          *oracle.agents[static_cast<std::size_t>(s)];
      const core::SynDogAgent& b = sharded->agent(s);
      // Whole-table equality, alarm flags and CUSUM doubles included
      // (PeriodReport::operator== is exact).
      EXPECT_EQ(a.history(), b.history());
      EXPECT_EQ(a.ever_alarmed(), b.ever_alarmed());
      EXPECT_EQ(a.first_alarm_period(), b.first_alarm_period());
      EXPECT_TRUE(b.ever_alarmed());  // the flood is far above f_min
    }

    const sim::TcpHostStats& ov = oracle.victim->stats();
    const sim::TcpHostStats& cv = sharded->victim().stats();
    EXPECT_EQ(ov.syns_received, cv.syns_received);
    EXPECT_EQ(ov.syn_acks_sent, cv.syn_acks_sent);
    EXPECT_EQ(ov.backlog_drops, cv.backlog_drops);
    EXPECT_EQ(ov.established_as_server, cv.established_as_server);
    EXPECT_EQ(ov.rsts_sent, cv.rsts_sent);
    EXPECT_EQ(oracle.victim->half_open_count(),
              sharded->victim().half_open_count());

    // The oracle cloud counts both directions of spoof-pool disposal in
    // one counter; the campaign splits it across the victim edge and
    // the per-stub responders.
    const sim::CloudStats& cs = oracle.net->cloud().stats();
    EXPECT_EQ(cs.dropped_unreachable,
              sharded->cross_stats().dropped_unreachable +
                  sharded->responder_stats().dropped_unreachable);
    // Cloud syns_seen covers generic space only; attached-host (victim)
    // deliveries are the campaign's to_victim mailbox records.
    EXPECT_EQ(cs.syns_seen, sharded->responder_stats().syns_seen);
    EXPECT_EQ(cs.delivered_to_hosts, sharded->cross_stats().to_victim);
    EXPECT_EQ(cs.syn_acks_generated,
              sharded->responder_stats().syn_acks_generated);
  }
}

TEST(CampaignOracleTest, CellDecompositionDoesNotChangeResults) {
  Profile p;
  p.end = SimTime::seconds(30);
  const auto background = make_background(p);
  const auto floods = make_flood_times(p);
  const auto one_cell = run_campaign(p, background, floods, 1, 1);
  const auto per_stub_cells =
      run_campaign(p, background, floods, 1, p.stubs);
  EXPECT_EQ(one_cell->state_digest(), per_stub_cells->state_digest());
}

// ---- Cross-worker-count byte identity --------------------------------

std::unique_ptr<campaign::CampaignSim> run_wire_campaign(int workers,
                                                         int stubs = 16) {
  campaign::CampaignParams cp;
  cp.stub_count = stubs;
  cp.hosts_per_stub = 200;
  cp.agent_params.observation_period = SimTime::seconds(5);
  cp.seed = 11;
  auto sim = std::make_unique<campaign::CampaignSim>(cp);
  for (int s = 0; s < stubs; ++s) {
    sim->start_wire_background(s, 20.0, SimTime::zero(),
                               SimTime::seconds(40));
  }
  // Flood timelines shared across instances: one deterministic draw per
  // stub, same child construction the engine itself uses.
  for (int s = 0; s < 4; ++s) {
    util::Rng rng = util::Rng::child(1234, static_cast<std::uint64_t>(s));
    std::vector<SimTime> times;
    double t = 15.0;
    while (true) {
      t += rng.exponential_mean(1.0 / 80.0);
      if (t >= 35.0) break;
      times.push_back(SimTime::from_seconds(t));
    }
    sim->launch_flood(s, 1, times, *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  sim->run_until(SimTime::seconds(40), workers);
  return sim;
}

std::string metrics_text(const campaign::CampaignSim& sim) {
  obs::Registry registry;
  sim.export_metrics(registry);
  std::string out;
  for (const auto& counter : registry.snapshot().counters) {
    out += counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  return out;
}

TEST(CampaignThreadsTest, WorkerCountIsInvisibleInEveryOutput) {
  const auto reference = run_wire_campaign(1);
  const std::string ref_digest = reference->state_digest();
  const std::string ref_metrics = metrics_text(*reference);
  EXPECT_GE(reference->stubs_alarmed(), 4);
  EXPECT_GT(reference->cross_stats().to_victim, 1000u);

  for (const int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto threaded = run_wire_campaign(workers);
    EXPECT_EQ(ref_digest, threaded->state_digest());
    EXPECT_EQ(ref_metrics, metrics_text(*threaded));
    ASSERT_EQ(reference->merged_alarms().size(),
              threaded->merged_alarms().size());
    for (std::size_t i = 0; i < reference->merged_alarms().size(); ++i) {
      EXPECT_EQ(reference->merged_alarms()[i].stub,
                threaded->merged_alarms()[i].stub);
      EXPECT_EQ(reference->merged_alarms()[i].event.at,
                threaded->merged_alarms()[i].event.at);
    }
  }
}

// ---- Randomized barrier / lookahead property -------------------------

TEST(CampaignBarrierTest, NoInjectionEverCrossesABarrier) {
  util::Rng trial_rng(20260808);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    campaign::CampaignParams cp;
    cp.stub_count = static_cast<int>(trial_rng.uniform_int(3, 9));
    cp.hosts_per_stub = 64;
    cp.cells = static_cast<int>(trial_rng.uniform_int(0, cp.stub_count));
    cp.uplink_delay =
        util::SimTime::microseconds(trial_rng.uniform_int(500, 8000));
    cp.downlink_delay =
        util::SimTime::microseconds(trial_rng.uniform_int(500, 8000));
    const util::SimTime lookahead =
        std::min(cp.uplink_delay, cp.downlink_delay);
    // A random window in (0, lookahead]; windows narrower than the
    // lookahead must only add slack, never change results.
    cp.window = util::SimTime::nanoseconds(
        trial_rng.uniform_int(1, lookahead.ns()));
    cp.agent_params.observation_period = SimTime::seconds(2);
    cp.seed = 40 + static_cast<std::uint64_t>(trial);
    std::vector<double> rates;
    for (int s = 0; s < cp.stub_count; ++s) {
      rates.push_back(static_cast<double>(trial_rng.uniform_int(5, 30)));
    }

    std::string digests[2];
    for (const int workers : {1, 3}) {
      campaign::CampaignSim sim(cp);
      for (int s = 0; s < cp.stub_count; ++s) {
        sim.start_wire_background(s, rates[static_cast<std::size_t>(s)],
                                  SimTime::zero(), SimTime::seconds(8));
      }
      std::vector<SimTime> times;
      double t = 2.0;
      while (t < 6.0) {
        times.push_back(SimTime::from_seconds(t));
        t += 0.02;
      }
      sim.launch_flood(0, 1, times,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));
      sim.run_until(SimTime::seconds(10), workers);

      // The conservative protocol's core invariant: every mailbox
      // record was injected at-or-after the barrier that carried it.
      EXPECT_GE(sim.min_injection_margin(), util::SimTime::zero());
      EXPECT_GT(sim.cross_stats().to_victim, 0u);
      EXPECT_GT(sim.cross_stats().barriers, 100u);
      digests[workers == 1 ? 0 : 1] = sim.state_digest();
    }
    EXPECT_EQ(digests[0], digests[1]);
  }
}

}  // namespace
}  // namespace syndog
