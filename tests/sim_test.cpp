#include <gtest/gtest.h>

#include <vector>

#include "syndog/sim/cloud.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/sim/router.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/sim/tcp_host.hpp"

namespace syndog::sim {
namespace {

using util::SimTime;

// --- Scheduler --------------------------------------------------------------

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime::seconds(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(SimTime::seconds(1), [&order, i] {
      order.push_back(i);
    });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sched.schedule_at(SimTime::seconds(5), [&] { ++ran; });
  EXPECT_EQ(sched.run_until(SimTime::seconds(2)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.now(), SimTime::seconds(2));
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sched.schedule_after(SimTime::seconds(1), chain);
    }
  };
  sched.schedule_at(SimTime::seconds(1), chain);
  sched.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), SimTime::seconds(5));
}

TEST(SchedulerTest, CancelledEventsAreSkipped) {
  Scheduler sched;
  int ran = 0;
  const EventId id =
      sched.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sched.schedule_at(SimTime::seconds(2), [&] { ++ran; });
  sched.cancel(id);
  sched.cancel(9999);  // unknown id: no-op
  sched.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, RejectsPastScheduling) {
  Scheduler sched;
  sched.schedule_at(SimTime::seconds(5), [] {});
  sched.run_all();
  EXPECT_THROW(sched.schedule_at(SimTime::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(SchedulerTest, CancellingExecutedIdIsANoOp) {
  Scheduler sched;
  obs::Registry registry;
  sched.attach_observer(&registry);
  int ran = 0;
  const EventId id = sched.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sched.schedule_at(SimTime::seconds(2), [&] { ++ran; });
  ASSERT_TRUE(sched.step());  // executes `id`
  EXPECT_EQ(ran, 1);
  // The old lazy-cancel design accepted any previously-issued id here:
  // pending() underflowed and the cancelled-set grew without bound.
  for (int i = 0; i < 100; ++i) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(registry.counter("sim.events_cancelled").value(), 0u);
  sched.run_all();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, StaleIdCannotCancelRecycledSlot) {
  Scheduler sched;
  int ran = 0;
  const EventId a = sched.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sched.cancel(a);  // removes the heap entry and recycles the slot now
  // The next event reuses the slot; the generation tag in the old id must
  // keep it from touching the new occupant.
  const EventId b = sched.schedule_after(SimTime::seconds(1), [&] { ++ran; });
  EXPECT_NE(a, b);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, CancelReleasesCapturedPoolSlots) {
  Scheduler sched;
  auto h = sched.packets().acquire(net::Packet{});
  EXPECT_EQ(sched.packets().in_use(), 1u);
  const EventId id = sched.schedule_at(
      SimTime::seconds(1), [h = std::move(h)] { (void)*h; });
  sched.cancel(id);  // destroys the callback now, releasing the pool slot
  EXPECT_EQ(sched.packets().in_use(), 0u);
  EXPECT_EQ(sched.pending(), 0u);
}

// --- Link -------------------------------------------------------------------

net::Packet small_packet() {
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  return net::make_syn(spec);
}

TEST(LinkTest, DeliversAfterDelay) {
  Scheduler sched;
  std::vector<SimTime> deliveries;
  LinkParams params;
  params.delay = SimTime::milliseconds(25);
  Link link(sched, params,
            [&](const net::Packet&) { deliveries.push_back(sched.now()); },
            1);
  link.send(small_packet());
  sched.run_all();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], SimTime::milliseconds(25));
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(LinkTest, SerializationDelayQueuesBackToBack) {
  Scheduler sched;
  std::vector<SimTime> deliveries;
  LinkParams params;
  params.delay = SimTime::zero() + SimTime::milliseconds(1);
  params.bandwidth_bps = 54.0 * 8 * 1000;  // 1 ms per 54-byte frame
  Link link(sched, params,
            [&](const net::Packet&) { deliveries.push_back(sched.now()); },
            1);
  link.send(small_packet());
  link.send(small_packet());
  sched.run_all();
  ASSERT_EQ(deliveries.size(), 2u);
  // Second frame waits for the first's serialization before its own.
  EXPECT_EQ((deliveries[1] - deliveries[0]).to_milliseconds(), 1.0);
}

TEST(LinkTest, LossDropsApproximatelyTheConfiguredFraction) {
  Scheduler sched;
  int delivered = 0;
  LinkParams params;
  params.loss_probability = 0.3;
  Link link(sched, params, [&](const net::Packet&) { ++delivered; }, 7);
  for (int i = 0; i < 2000; ++i) link.send(small_packet());
  sched.run_all();
  EXPECT_NEAR(static_cast<double>(delivered) / 2000.0, 0.7, 0.05);
  EXPECT_EQ(link.lost() + link.delivered(), link.sent());
}

TEST(LinkTest, QueueLimitTailDrops) {
  Scheduler sched;
  LinkParams params;
  params.queue_limit = 5;
  int delivered = 0;
  Link link(sched, params, [&](const net::Packet&) { ++delivered; }, 1);
  for (int i = 0; i < 10; ++i) link.send(small_packet());
  sched.run_all();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(link.dropped_queue_full(), 5u);
}

TEST(LinkTest, ChaosVerdictsAreCountedAndExposedAsMetrics) {
  Scheduler sched;
  LinkParams params;
  params.delay = SimTime::milliseconds(1);
  int delivered = 0;
  Link link(sched, params, [&](const net::Packet&) { ++delivered; }, 1);

  // Deterministic perturber cycling through every verdict kind.
  struct ScriptedChaos : LinkChaos {
    int n = 0;
    Verdict inspect(SimTime, const net::Packet&) override {
      Verdict v;
      switch (n++ % 4) {
        case 0: v.drop = Drop::kLinkDown; break;
        case 1: v.drop = Drop::kLoss; break;
        case 2: v.extra_copies = 1; break;
        default: v.extra_delay = SimTime::milliseconds(5); break;
      }
      return v;
    }
  } chaos;
  obs::Registry registry;
  link.attach_observer(registry, "dl");
  link.set_chaos(&chaos);
  for (int i = 0; i < 40; ++i) link.send(small_packet());
  sched.run_all();

  EXPECT_EQ(link.dropped_link_down(), 10u);
  EXPECT_EQ(link.dropped_chaos_loss(), 10u);
  EXPECT_EQ(link.duplicated(), 10u);
  EXPECT_EQ(link.delayed(), 10u);
  // 10 duplicated (x2) + 10 delayed deliveries; the rest dropped.
  EXPECT_EQ(link.delivered(), 30u);
  EXPECT_EQ(delivered, 30);
  EXPECT_EQ(link.sent(), 40u);

  // The same counters, mirrored into the registry under "link.dl.*".
  EXPECT_EQ(registry.counter("link.dl.sent").value(), 40u);
  EXPECT_EQ(registry.counter("link.dl.dropped_link_down").value(), 10u);
  EXPECT_EQ(registry.counter("link.dl.dropped_chaos_loss").value(), 10u);
  EXPECT_EQ(registry.counter("link.dl.duplicated").value(), 10u);
  EXPECT_EQ(registry.counter("link.dl.delayed").value(), 10u);
  EXPECT_EQ(registry.counter("link.dl.delivered").value(), 30u);

  // Detaching restores the unperturbed path.
  link.set_chaos(nullptr);
  for (int i = 0; i < 5; ++i) link.send(small_packet());
  sched.run_all();
  EXPECT_EQ(link.delivered(), 35u);
}

// --- TcpHost handshake ---------------------------------------------------------

struct HandshakePair {
  Scheduler sched;
  std::unique_ptr<TcpHost> client;
  std::unique_ptr<TcpHost> server;

  explicit HandshakePair(TcpHostParams params = {}) {
    // Direct 5 ms wire between the two hosts.
    client = std::make_unique<TcpHost>(
        "client", net::Ipv4Address(10, 0, 0, 1),
        net::MacAddress::for_host(1), net::MacAddress::for_host(99), sched,
        [this](const net::Packet& pkt) {
          sched.schedule_after(
              SimTime::milliseconds(5),
              [this, h = sched.packets().acquire(pkt)] {
                server->receive(*h);
              });
        },
        params, 1);
    server = std::make_unique<TcpHost>(
        "server", net::Ipv4Address(10, 0, 0, 2),
        net::MacAddress::for_host(2), net::MacAddress::for_host(99), sched,
        [this](const net::Packet& pkt) {
          sched.schedule_after(
              SimTime::milliseconds(5),
              [this, h = sched.packets().acquire(pkt)] {
                client->receive(*h);
              });
        },
        params, 2);
  }
};

TEST(TcpHostTest, ThreeWayHandshakeCompletes) {
  HandshakePair pair;
  pair.server->listen(80);
  pair.client->connect(pair.server->ip(), 80);
  pair.sched.run_all();
  EXPECT_EQ(pair.client->stats().established_as_client, 1u);
  EXPECT_EQ(pair.server->stats().established_as_server, 1u);
  EXPECT_EQ(pair.server->half_open_count(), 0u);
  EXPECT_EQ(pair.client->stats().syns_sent, 1u);
  EXPECT_EQ(pair.server->stats().syn_acks_sent, 1u);
}

TEST(TcpHostTest, SynToClosedPortGetsRst) {
  HandshakePair pair;
  pair.client->connect(pair.server->ip(), 8080);  // nobody listening
  pair.sched.run_all();
  EXPECT_EQ(pair.server->stats().rsts_sent, 1u);
  EXPECT_EQ(pair.client->stats().rsts_received, 1u);
  EXPECT_EQ(pair.client->stats().established_as_client, 0u);
  EXPECT_EQ(pair.client->stats().connect_failures, 1u);
}

TEST(TcpHostTest, BacklogFillsAndDropsSilently) {
  TcpHostParams params;
  params.backlog = 4;
  Scheduler sched;
  // Server whose replies go nowhere (spoofed flood: no final ACKs).
  TcpHost server("victim", net::Ipv4Address(10, 0, 0, 2),
                 net::MacAddress::for_host(2),
                 net::MacAddress::for_host(99), sched,
                 [](const net::Packet&) {}, params, 3);
  server.listen(80);
  for (int i = 0; i < 10; ++i) {
    net::TcpPacketSpec spec;
    spec.src_ip = net::Ipv4Address{0xf0000000u + static_cast<std::uint32_t>(i)};
    spec.dst_ip = server.ip();
    spec.src_port = static_cast<std::uint16_t>(1024 + i);
    spec.dst_port = 80;
    server.receive(net::make_syn(spec));
  }
  EXPECT_EQ(server.half_open_count(), 4u);
  EXPECT_TRUE(server.backlog_full());
  EXPECT_EQ(server.stats().backlog_drops, 6u);
  // The half-open slots are reclaimed only after the 75 s timeout.
  sched.run_until(SimTime::seconds(74));
  EXPECT_EQ(server.half_open_count(), 4u);
  sched.run_until(SimTime::seconds(76));
  EXPECT_EQ(server.half_open_count(), 0u);
  EXPECT_EQ(server.stats().half_open_timeouts, 4u);
}

TEST(TcpHostTest, DuplicateSynDoesNotConsumeExtraBacklog) {
  TcpHostParams params;
  params.backlog = 4;
  Scheduler sched;
  TcpHost server("server", net::Ipv4Address(10, 0, 0, 2),
                 net::MacAddress::for_host(2),
                 net::MacAddress::for_host(99), sched,
                 [](const net::Packet&) {}, params, 3);
  server.listen(80);
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 0, 0, 1);
  spec.dst_ip = server.ip();
  spec.src_port = 1234;
  spec.dst_port = 80;
  server.receive(net::make_syn(spec));
  server.receive(net::make_syn(spec));  // retransmission
  EXPECT_EQ(server.half_open_count(), 1u);
  EXPECT_EQ(server.stats().syn_acks_sent, 2u);  // SYN/ACK re-sent
}

TEST(TcpHostTest, UnexpectedSynAckTriggersRst) {
  // Paper §1: an endhost receiving a SYN/ACK it never asked for sends RST,
  // which is why flood sources must spoof *unreachable* addresses.
  HandshakePair pair;
  net::TcpPacketSpec spec;
  spec.src_ip = pair.server->ip();
  spec.dst_ip = pair.client->ip();
  spec.src_port = 80;
  spec.dst_port = 5555;
  spec.flags = net::TcpFlags::syn_ack();
  pair.client->receive(net::make_tcp_packet(spec));
  EXPECT_EQ(pair.client->stats().rsts_sent, 1u);
}

TEST(TcpHostTest, RstClearsHalfOpenState) {
  HandshakePair pair;
  pair.server->listen(80);
  net::TcpPacketSpec spec;
  spec.src_ip = pair.client->ip();
  spec.dst_ip = pair.server->ip();
  spec.src_port = 4444;
  spec.dst_port = 80;
  pair.server->receive(net::make_syn(spec));
  EXPECT_EQ(pair.server->half_open_count(), 1u);
  spec.flags = net::TcpFlags::rst_only();
  pair.server->receive(net::make_tcp_packet(spec));
  EXPECT_EQ(pair.server->half_open_count(), 0u);
}

TEST(TcpHostTest, ClientGivesUpAfterRetransmissions) {
  Scheduler sched;
  // Client whose SYNs vanish.
  TcpHost client("client", net::Ipv4Address(10, 0, 0, 1),
                 net::MacAddress::for_host(1),
                 net::MacAddress::for_host(99), sched,
                 [](const net::Packet&) {}, TcpHostParams{}, 4);
  client.connect(net::Ipv4Address(192, 0, 2, 1), 80);
  sched.run_all();
  EXPECT_EQ(client.stats().syns_sent, 3u);  // initial + 2 retx
  EXPECT_EQ(client.stats().connect_failures, 1u);
}

// --- LeafRouter -------------------------------------------------------------------

TEST(RouterTest, TapsSeeCrossingTrafficOnly) {
  LeafRouter router(*net::Ipv4Prefix::parse("10.1.0.0/16"),
                    net::MacAddress::for_host(0xffffff));
  int outbound_tap = 0;
  int inbound_tap = 0;
  int uplinked = 0;
  int local_delivery = 0;
  router.add_outbound_tap(
      [&](SimTime, const net::Packet&) { ++outbound_tap; });
  router.add_inbound_tap(
      [&](SimTime, const net::Packet&) { ++inbound_tap; });
  router.set_uplink([&](const net::Packet&) { ++uplinked; });
  router.attach_host(net::Ipv4Address(10, 1, 0, 5),
                     [&](const net::Packet&) { ++local_delivery; });

  net::TcpPacketSpec out;
  out.src_ip = net::Ipv4Address(10, 1, 0, 5);
  out.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  router.forward_from_intranet(SimTime::zero(), net::make_syn(out));

  net::TcpPacketSpec local;
  local.src_ip = net::Ipv4Address(10, 1, 0, 5);
  local.dst_ip = net::Ipv4Address(10, 1, 0, 5);
  router.forward_from_intranet(SimTime::zero(), net::make_syn(local));

  net::TcpPacketSpec in;
  in.src_ip = net::Ipv4Address(192, 0, 2, 1);
  in.dst_ip = net::Ipv4Address(10, 1, 0, 5);
  router.forward_from_internet(SimTime::zero(), net::make_syn_ack(in));

  EXPECT_EQ(outbound_tap, 1);  // local-to-local never crosses
  EXPECT_EQ(inbound_tap, 1);
  EXPECT_EQ(uplinked, 1);
  EXPECT_EQ(local_delivery, 2);  // one local, one inbound
  EXPECT_EQ(router.stats().forwarded_outbound, 1u);
  EXPECT_EQ(router.stats().forwarded_inbound, 1u);
}

TEST(RouterTest, IngressFilterDropsSpoofedAndReportsViolation) {
  LeafRouter router(*net::Ipv4Prefix::parse("10.1.0.0/16"),
                    net::MacAddress::for_host(0xffffff));
  int uplinked = 0;
  int violations = 0;
  net::MacAddress offender;
  router.set_uplink([&](const net::Packet&) { ++uplinked; });
  router.set_ingress_filtering(true);
  router.set_ingress_violation_handler(
      [&](SimTime, const net::Packet& pkt) {
        ++violations;
        offender = pkt.eth.src;
      });

  net::TcpPacketSpec spoofed;
  spoofed.src_mac = net::MacAddress::for_host(7);
  spoofed.src_ip = net::Ipv4Address(240, 0, 0, 1);  // not in the stub
  spoofed.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  router.forward_from_intranet(SimTime::zero(), net::make_syn(spoofed));

  net::TcpPacketSpec legit;
  legit.src_ip = net::Ipv4Address(10, 1, 0, 3);
  legit.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  router.forward_from_intranet(SimTime::zero(), net::make_syn(legit));

  EXPECT_EQ(uplinked, 1);
  EXPECT_EQ(violations, 1);
  EXPECT_EQ(offender, net::MacAddress::for_host(7));
  EXPECT_EQ(router.stats().dropped_ingress_filter, 1u);
}

TEST(RouterTest, RejectsForeignHostAttachment) {
  LeafRouter router(*net::Ipv4Prefix::parse("10.1.0.0/16"),
                    net::MacAddress::for_host(0xffffff));
  EXPECT_THROW(
      router.attach_host(net::Ipv4Address(192, 0, 2, 1),
                         [](const net::Packet&) {}),
      std::invalid_argument);
}

// --- InternetCloud ------------------------------------------------------------------

TEST(CloudTest, AnswersSynsAndDropsUnreachable) {
  Scheduler sched;
  std::vector<net::Packet> replies;
  CloudParams params;
  params.no_answer_probability = 0.0;
  InternetCloud cloud(sched, params,
                      [&](const net::Packet& pkt) { replies.push_back(pkt); },
                      1);

  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 3);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = 3333;
  spec.dst_port = 80;
  cloud.receive(net::make_syn(spec));

  net::TcpPacketSpec to_void = spec;
  to_void.dst_ip = net::Ipv4Address(240, 0, 0, 9);  // spoof pool
  cloud.receive(net::make_syn(to_void));

  sched.run_all();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].is_syn_ack());
  EXPECT_EQ(replies[0].ip.dst, spec.src_ip);
  EXPECT_EQ(replies[0].tcp->ack, spec.seq + 1);
  EXPECT_EQ(cloud.stats().dropped_unreachable, 1u);
}

TEST(CloudTest, CompletesInboundHandshakes) {
  Scheduler sched;
  std::vector<net::Packet> replies;
  InternetCloud cloud(sched, CloudParams{},
                      [&](const net::Packet& pkt) { replies.push_back(pkt); },
                      2);
  // A stub server's SYN/ACK heading to a generic remote client.
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 3);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 77);
  spec.src_port = 80;
  spec.dst_port = 50000;
  spec.seq = 1000;
  spec.ack = 501;
  cloud.receive(net::make_syn_ack(spec));
  sched.run_all();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].tcp->flags, net::TcpFlags::ack_only());
  EXPECT_EQ(replies[0].tcp->ack, 1001u);
}

// --- StubNetworkSim end to end -----------------------------------------------------

TEST(StubNetworkTest, LiveHandshakesThroughRouterAndCloud) {
  StubNetworkParams params;
  params.num_hosts = 5;
  params.cloud.no_answer_probability = 0.0;
  StubNetworkSim sim(params);

  std::uint64_t out_tap = 0;
  std::uint64_t in_tap = 0;
  sim.router().add_outbound_tap(
      [&](SimTime, const net::Packet& pkt) { out_tap += pkt.is_syn(); });
  sim.router().add_inbound_tap(
      [&](SimTime, const net::Packet& pkt) { in_tap += pkt.is_syn_ack(); });

  std::vector<SimTime> starts;
  for (int i = 0; i < 20; ++i) {
    starts.push_back(SimTime::milliseconds(100 * (i + 1)));
  }
  sim.schedule_outbound_background(starts);
  sim.run_until(SimTime::seconds(30));

  EXPECT_EQ(out_tap, 20u);
  EXPECT_EQ(in_tap, 20u);
  std::uint64_t established = 0;
  for (std::uint32_t h = 1; h <= params.num_hosts; ++h) {
    established += sim.host(h).stats().established_as_client;
  }
  EXPECT_EQ(established, 20u);
}

TEST(StubNetworkTest, FloodAgainstRealVictimExhaustsBacklog) {
  StubNetworkParams params;
  params.num_hosts = 3;
  StubNetworkSim sim(params);
  TcpHostParams victim_params;
  victim_params.backlog = 64;
  TcpHost& victim = sim.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);

  std::vector<SimTime> flood;
  for (int i = 0; i < 500; ++i) {
    flood.push_back(SimTime::milliseconds(10 * i));
  }
  sim.launch_flood(2, flood, victim.ip(), 80,
                   *net::Ipv4Prefix::parse("240.0.0.0/8"));
  sim.run_until(SimTime::seconds(10));

  EXPECT_TRUE(victim.backlog_full());
  EXPECT_GT(victim.stats().backlog_drops, 300u);
  EXPECT_EQ(victim.stats().established_as_server, 0u);
  // Spoofed sources are unreachable: every SYN/ACK dies in the cloud.
  EXPECT_GT(sim.cloud().stats().dropped_unreachable, 0u);
}

TEST(StubNetworkTest, ReplayRoutesByDirection) {
  StubNetworkParams params;
  params.num_hosts = 2;
  StubNetworkSim sim(params);
  sim.set_uplink_sink();
  int out_seen = 0;
  int in_seen = 0;
  sim.router().add_outbound_tap(
      [&](SimTime, const net::Packet&) { ++out_seen; });
  sim.router().add_inbound_tap(
      [&](SimTime, const net::Packet&) { ++in_seen; });

  net::TcpPacketSpec out;
  out.src_ip = params.stub_prefix.host(1);
  out.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  sim.replay_at_router(SimTime::seconds(1), net::make_syn(out));

  net::TcpPacketSpec in;
  in.src_ip = net::Ipv4Address(192, 0, 2, 1);
  // Destination is inside the stub but not a simulated host: in replay
  // mode the endpoints live in the trace, and a live host would answer an
  // unexpected SYN/ACK with a RST that perturbs the outbound count.
  in.dst_ip = params.stub_prefix.host(200);
  sim.replay_at_router(SimTime::seconds(2), net::make_syn_ack(in));

  // Spoofed-source attack frame: neither src nor dst inside the stub,
  // but it *leaves* the stub, so it must cross the outbound interface.
  net::TcpPacketSpec spoofed;
  spoofed.src_ip = net::Ipv4Address(240, 0, 0, 1);
  spoofed.dst_ip = net::Ipv4Address(198, 51, 100, 10);
  sim.replay_at_router(SimTime::seconds(3), net::make_syn(spoofed));

  sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(out_seen, 2);
  EXPECT_EQ(in_seen, 1);
}

}  // namespace
}  // namespace syndog::sim
