#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "syndog/core/syndog.hpp"
#include "syndog/obs/export.hpp"
#include "syndog/obs/json.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::obs {
namespace {

// --- Registry / instruments ------------------------------------------------

TEST(MetricsTest, CountersAndGaugesAccumulate) {
  Registry reg;
  Counter& c = reg.counter("packets");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("packets"), &c);  // stable reference, same instrument

  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(MetricsTest, HistogramBucketEdges) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1        -> bucket 0
  h.observe(1.0);    // == bound    -> bucket 0 (bounds are inclusive)
  h.observe(1.0001); //             -> bucket 1
  h.observe(10.0);   //             -> bucket 1
  h.observe(100.0);  //             -> bucket 2
  h.observe(1e6);    // above last  -> overflow bucket
  const std::vector<std::uint64_t> expected = {2, 2, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);

  Registry reg;
  (void)reg.histogram("lat", {1.0, 2.0});
  // Same bounds: same instrument. Different bounds: refused, because the
  // exporter can never rebin.
  (void)reg.histogram("lat", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("lat", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsTest, SnapshotIsSortedAndDeterministic) {
  const auto build = [](Registry& reg) {
    reg.counter("zeta").add(2);
    reg.counter("alpha").add(1);
    reg.gauge("mid").set(0.25);
    reg.histogram("lat", {1.0, 4.0}).observe(3.0);
  };
  Registry a;
  Registry b;
  build(a);
  build(b);

  const MetricsSnapshot snap = a.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");

  // Identical registry state renders to byte-identical JSON.
  EXPECT_EQ(snap.to_json(), b.snapshot().to_json());
  EXPECT_NE(snap.to_json().find("\"alpha\":1"), std::string::npos);
}

// --- Event tracer ----------------------------------------------------------

TEST(TracerTest, RingOverflowKeepsNewestAndCounts) {
  EventTracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.record(util::SimTime::seconds(i), PeriodRollover{i, 10 + i, 9 + i});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);

  const std::vector<Event> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is seq 2 (events 0 and 1 were evicted), in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
    EXPECT_EQ(std::get<PeriodRollover>(events[i].payload).period,
              static_cast<std::int64_t>(i) + 2);
  }

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --- Exporters -------------------------------------------------------------

TEST(ExportTest, EventRendersAsStableJson) {
  EventTracer tracer(8);
  tracer.record(util::SimTime::seconds(20),
                CusumUpdate{1, 50.0, 2114.5, 0.25, 0.0});
  const std::vector<Event> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(event_to_json(events[0]),
            "{\"t_ns\":20000000000,\"seq\":0,\"type\":\"cusum_update\","
            "\"period\":1,\"delta\":50,\"k\":2114.5,\"x\":0.25,\"y\":0}");
}

TEST(ExportTest, SameSeedRunsProduceIdenticalJsonl) {
  // The reproducibility contract of the whole layer: run the detector over
  // a seeded series twice and the rendered event streams must match byte
  // for byte.
  const auto run = [] {
    util::Rng rng(7);
    std::vector<std::int64_t> syns;
    std::vector<std::int64_t> syn_acks;
    for (int n = 0; n < 200; ++n) {
      const std::int64_t ack = rng.uniform_int(1900, 2300);
      syn_acks.push_back(ack);
      syns.push_back(ack + rng.uniform_int(0, 200) +
                     (n >= 150 ? 900 : 0));  // drift into an alarm
    }
    EventTracer tracer(1024);
    Registry registry;
    (void)core::run_over_series(core::SynDogParams::paper_defaults(), syns,
                                syn_acks, &tracer, &registry);
    return to_jsonl(tracer);
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"type\":\"alarm_raised\""), std::string::npos);
}

TEST(ExportTest, PeriodSeriesCsvJoinsAndCarriesAlarm) {
  EventTracer tracer(32);
  const util::SimTime t1 = util::SimTime::seconds(20);
  const util::SimTime t2 = util::SimTime::seconds(40);
  const util::SimTime t3 = util::SimTime::seconds(60);
  tracer.record(t1, PeriodRollover{0, 100, 90});
  tracer.record(t1, CusumUpdate{0, 10.0, 90.0, 0.1, 0.0});
  tracer.record(t2, PeriodRollover{1, 300, 90});
  tracer.record(t2, CusumUpdate{1, 210.0, 90.0, 2.3, 1.6});
  tracer.record(t2, AlarmRaised{1, 1.6, 1.05});
  tracer.record(t3, PeriodRollover{2, 100, 90});
  tracer.record(t3, CusumUpdate{2, 10.0, 90.0, 0.1, 0.0});
  tracer.record(t3, AlarmCleared{2, 0.0});

  const std::string csv = period_series_csv(tracer);
  const std::string expected =
      "period,t_s,syn,syn_ack,delta,k,x,y,alarm\n"
      "0,20,100,90,10,90,0.1,0,0\n"
      "1,40,300,90,210,90,2.3,1.6,1\n"
      "2,60,100,90,10,90,0.1,0,0\n";
  EXPECT_EQ(csv, expected);
}

// --- Wall-clock seam -------------------------------------------------------

TEST(WallClockTest, ScopedTimerRecordsElapsed) {
  ManualWallClock clock;
  Registry reg;
  Histogram& hist = reg.histogram("t_ns", {100.0, 1000.0});
  {
    ScopedTimer timer(clock, hist);
    clock.advance_ns(250);
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.sum(), 250.0);
  EXPECT_EQ(hist.bucket_counts()[1], 1u);
}

TEST(WallClockTest, LatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double> bounds = latency_buckets_ns();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(WallClockTest, RealClockIsMonotonic) {
  const WallClock clock;
  const std::int64_t a = clock.now_ns();
  const std::int64_t b = clock.now_ns();
  EXPECT_GE(b, a);
}

// --- JSON rendering --------------------------------------------------------

TEST(JsonTest, NumbersRoundTripShortest) {
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(2114.0), "2114");
  EXPECT_EQ(json_number(std::int64_t{-5}), "-5");
  EXPECT_EQ(json_number(1.0 / 0.0), "null");  // JSON has no infinity
}

TEST(JsonTest, StringsEscape) {
  EXPECT_EQ(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

}  // namespace
}  // namespace syndog::obs
