#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "syndog/classify/batch.hpp"
#include "syndog/classify/engines.hpp"
#include "syndog/classify/rule.hpp"
#include "syndog/classify/segment.hpp"
#include "syndog/net/digest.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::classify {
namespace {

net::Packet tcp_with_flags(net::TcpFlags flags, std::size_t payload = 0) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(1);
  spec.dst_mac = net::MacAddress::for_host(2);
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 9);
  spec.src_port = 30000;
  spec.dst_port = 80;
  spec.flags = flags;
  spec.payload_bytes = payload;
  return net::make_tcp_packet(spec);
}

// --- flag classification -----------------------------------------------------

TEST(SegmentTest, FlagTaxonomy) {
  EXPECT_EQ(classify_flags(net::TcpFlags::syn_only()), SegmentKind::kSyn);
  EXPECT_EQ(classify_flags(net::TcpFlags::syn_ack()), SegmentKind::kSynAck);
  EXPECT_EQ(classify_flags(net::TcpFlags::rst_only()), SegmentKind::kRst);
  EXPECT_EQ(classify_flags(net::TcpFlags::rst_ack()), SegmentKind::kRst);
  EXPECT_EQ(classify_flags(net::TcpFlags::fin_ack()), SegmentKind::kFin);
  EXPECT_EQ(classify_flags(net::TcpFlags::ack_only()),
            SegmentKind::kPureAck);
  EXPECT_EQ(classify_flags(net::TcpFlags{net::TcpFlags::kPsh |
                                         net::TcpFlags::kAck}),
            SegmentKind::kData);
}

TEST(SegmentTest, RstTakesPrecedenceOverFin) {
  // A RST|FIN segment resets; it must not be counted as teardown.
  EXPECT_EQ(classify_flags(net::TcpFlags{net::TcpFlags::kRst |
                                         net::TcpFlags::kFin}),
            SegmentKind::kRst);
}

TEST(SegmentTest, SynTakesPrecedence) {
  EXPECT_EQ(classify_flags(net::TcpFlags{net::TcpFlags::kSyn |
                                         net::TcpFlags::kUrg}),
            SegmentKind::kSyn);
}

TEST(SegmentTest, PacketClassificationUsesPayloadForAcks) {
  EXPECT_EQ(classify_packet(tcp_with_flags(net::TcpFlags::ack_only(), 0)),
            SegmentKind::kPureAck);
  EXPECT_EQ(classify_packet(tcp_with_flags(net::TcpFlags::ack_only(), 512)),
            SegmentKind::kData);
}

TEST(SegmentTest, NonFirstFragmentIsNotClassified) {
  // Paper §2: only packets with zero fragmentation offset carry the TCP
  // header, so only they can be classified by flags.
  net::Packet pkt = tcp_with_flags(net::TcpFlags::syn_only());
  pkt.ip.frag_flags_offset = 100;
  EXPECT_EQ(classify_packet(pkt), SegmentKind::kNotTcp);
}

TEST(SegmentTest, UdpIsNotTcp) {
  const net::Packet udp = net::make_udp_packet(
      net::MacAddress::for_host(1), net::MacAddress::for_host(2),
      net::Ipv4Address(10, 1, 0, 1), net::Ipv4Address(10, 1, 0, 2), 111,
      53, 32);
  EXPECT_EQ(classify_packet(udp), SegmentKind::kNotTcp);
}

// The fast frame path must agree with the decoded-packet path on every
// segment kind (property check over the full flag space).
TEST(SegmentTest, FrameFastAgreesWithPacketPathOnAllFlagCombos) {
  for (int bits = 0; bits < 64; ++bits) {
    for (const std::size_t payload : {std::size_t{0}, std::size_t{64}}) {
      const net::Packet pkt =
          tcp_with_flags(net::TcpFlags{static_cast<std::uint8_t>(bits)},
                         payload);
      const net::ByteBuffer frame = net::encode_frame(pkt);
      EXPECT_EQ(classify_frame_fast(frame), classify_packet(pkt))
          << "flags=" << bits << " payload=" << payload;
    }
  }
}

TEST(SegmentTest, FrameFastHandlesHostileInput) {
  // Truncated, wrong ethertype, non-TCP, fragmented: never crash, always
  // kNotTcp.
  const net::ByteBuffer frame =
      net::encode_frame(tcp_with_flags(net::TcpFlags::syn_only()));
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    (void)classify_frame_fast(net::ByteSpan{frame.data(), len});
  }
  for (std::size_t len = 0; len < 34; ++len) {
    EXPECT_EQ(classify_frame_fast(net::ByteSpan{frame.data(), len}),
              SegmentKind::kNotTcp);
  }
  net::ByteBuffer arp = frame;
  arp[13] = 0x06;
  EXPECT_EQ(classify_frame_fast(arp), SegmentKind::kNotTcp);
  net::ByteBuffer fragmented = frame;
  fragmented[20] = 0x00;
  fragmented[21] = 0x64;  // fragment offset 100
  EXPECT_EQ(classify_frame_fast(fragmented), SegmentKind::kNotTcp);
}

TEST(SegmentCountersTest, AccumulatesAndResets) {
  SegmentCounters counters;
  counters.add(SegmentKind::kSyn);
  counters.add(SegmentKind::kSyn);
  counters.add(SegmentKind::kSynAck);
  EXPECT_EQ(counters.syn(), 2u);
  EXPECT_EQ(counters.syn_ack(), 1u);
  EXPECT_EQ(counters.total(), 3u);
  SegmentCounters more;
  more.add(SegmentKind::kRst);
  counters += more;
  EXPECT_EQ(counters.count(SegmentKind::kRst), 1u);
  counters.reset();
  EXPECT_EQ(counters.total(), 0u);
}

// --- rules ---------------------------------------------------------------------

TEST(RuleTest, SynCountRuleMatchesOnlyPureSyn) {
  const Rule rule = make_syn_count_rule();
  FlowKey syn = FlowKey::from_packet(tcp_with_flags(net::TcpFlags::syn_only()));
  FlowKey synack =
      FlowKey::from_packet(tcp_with_flags(net::TcpFlags::syn_ack()));
  EXPECT_TRUE(rule.matches(syn));
  EXPECT_FALSE(rule.matches(synack));
  EXPECT_TRUE(make_syn_ack_count_rule().matches(synack));
  EXPECT_FALSE(make_syn_ack_count_rule().matches(syn));
}

TEST(RuleTest, FlagRuleNeverMatchesNonTcp) {
  const Rule rule = make_syn_count_rule();
  FlowKey udp;
  udp.protocol = 17;
  udp.tcp_flags = net::TcpFlags::kSyn;  // garbage that must be ignored
  EXPECT_FALSE(rule.matches(udp));
}

TEST(RuleTest, PrefixAndPortFiltering) {
  Rule rule;
  rule.src = *net::Ipv4Prefix::parse("10.1.0.0/16");
  rule.dst_ports = PortRange::exactly(80);
  FlowKey key;
  key.src_ip = *net::Ipv4Address::parse("10.1.3.4");
  key.dst_port = 80;
  EXPECT_TRUE(rule.matches(key));
  key.dst_port = 81;
  EXPECT_FALSE(rule.matches(key));
  key.dst_port = 80;
  key.src_ip = *net::Ipv4Address::parse("10.2.3.4");
  EXPECT_FALSE(rule.matches(key));
}

// --- engines -------------------------------------------------------------------

Rule random_rule(util::Rng& rng, std::uint32_t priority) {
  Rule rule;
  // Short prefixes so random keys actually hit rules.
  rule.src = net::Ipv4Prefix{net::Ipv4Address{rng.next_u32()},
                             static_cast<int>(rng.uniform_int(0, 16))};
  rule.dst = net::Ipv4Prefix{net::Ipv4Address{rng.next_u32()},
                             static_cast<int>(rng.uniform_int(0, 16))};
  if (rng.bernoulli(0.3)) {
    const auto lo = static_cast<std::uint16_t>(rng.uniform_int(0, 60000));
    rule.dst_ports = PortRange{
        lo, static_cast<std::uint16_t>(lo + rng.uniform_int(0, 5000))};
  }
  if (rng.bernoulli(0.3)) {
    rule.protocol = rng.bernoulli(0.5) ? 6 : 17;
  }
  rule.priority = priority;
  return rule;
}

FlowKey random_key(util::Rng& rng) {
  FlowKey key;
  key.src_ip = net::Ipv4Address{rng.next_u32()};
  key.dst_ip = net::Ipv4Address{rng.next_u32()};
  key.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  key.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  key.protocol = rng.bernoulli(0.7) ? 6 : 17;
  if (key.protocol == 6) {
    key.tcp_flags = static_cast<std::uint8_t>(rng.uniform_int(0, 63));
  }
  return key;
}

TEST(EnginesTest, AllEnginesAgreeOnRandomRuleSets) {
  util::Rng rng(2024);
  for (int round = 0; round < 10; ++round) {
    auto engines = make_all_classifiers();
    const int rules = static_cast<int>(rng.uniform_int(1, 60));
    for (int i = 0; i < rules; ++i) {
      // Duplicate priorities on purpose: insertion order must break ties.
      const Rule rule = random_rule(
          rng, static_cast<std::uint32_t>(rng.uniform_int(0, 9)));
      for (auto& engine : engines) engine->add_rule(rule);
    }
    for (auto& engine : engines) engine->build();

    for (int probe = 0; probe < 200; ++probe) {
      const FlowKey key = random_key(rng);
      const Rule* expected = engines[0]->match(key);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        const Rule* got = engines[e]->match(key);
        ASSERT_EQ(expected == nullptr, got == nullptr)
            << engines[e]->name() << " round " << round;
        if (expected != nullptr) {
          // Engines return pointers into their own storage; compare by
          // content-identifying fields.
          EXPECT_EQ(expected->priority, got->priority);
          EXPECT_EQ(expected->src, got->src);
          EXPECT_EQ(expected->dst, got->dst);
        }
      }
    }
  }
}

TEST(EnginesTest, FirstMatchByPriorityThenInsertion) {
  for (auto& engine : make_all_classifiers()) {
    Rule broad;
    broad.priority = 5;
    broad.name = "broad";
    Rule specific;
    specific.src = *net::Ipv4Prefix::parse("10.0.0.0/8");
    specific.priority = 1;
    specific.name = "specific";
    Rule same_prio;
    same_prio.priority = 5;
    same_prio.name = "second-at-5";
    engine->add_rule(broad);
    engine->add_rule(specific);
    engine->add_rule(same_prio);
    engine->build();

    FlowKey in10;
    in10.src_ip = *net::Ipv4Address::parse("10.9.9.9");
    const Rule* hit = engine->match(in10);
    ASSERT_NE(hit, nullptr) << engine->name();
    EXPECT_EQ(hit->name, "specific") << engine->name();

    FlowKey other;
    other.src_ip = *net::Ipv4Address::parse("192.0.2.1");
    hit = engine->match(other);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->name, "broad") << engine->name();  // insertion order
  }
}

TEST(EnginesTest, NoMatchReturnsNull) {
  for (auto& engine : make_all_classifiers()) {
    Rule rule;
    rule.src = *net::Ipv4Prefix::parse("10.0.0.0/8");
    engine->add_rule(rule);
    engine->build();
    FlowKey key;
    key.src_ip = *net::Ipv4Address::parse("192.0.2.1");
    EXPECT_EQ(engine->match(key), nullptr) << engine->name();
  }
}

TEST(EnginesTest, LifecycleErrors) {
  for (auto& engine : make_all_classifiers()) {
    EXPECT_THROW((void)engine->match(FlowKey{}), std::logic_error)
        << engine->name();
    engine->build();
    EXPECT_THROW(engine->add_rule(Rule{}), std::logic_error)
        << engine->name();
  }
}

TEST(EnginesTest, TrieReportsNodesAndTupleSpaceReportsTuples) {
  HierarchicalTrieClassifier trie;
  TupleSpaceClassifier tuples;
  util::Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    const Rule rule = random_rule(rng, static_cast<std::uint32_t>(i));
    trie.add_rule(rule);
    tuples.add_rule(rule);
  }
  trie.build();
  tuples.build();
  EXPECT_GT(trie.node_count(), 32u);
  EXPECT_GE(tuples.tuple_count(), 1u);
  EXPECT_LE(tuples.tuple_count(), 32u);
}

// --- batched flag sweep ------------------------------------------------------

TEST(BatchSweepTest, AgreesWithPerFlagClassification) {
  // The sweep's two mask tests must reproduce classify_flags' kSyn /
  // kSynAck decisions for every six-bit flag byte and for the no-TCP
  // sentinel, so batch counting is a pure refactor of the §2 sniffers.
  util::Rng rng(101);
  for (int round = 0; round < 50; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::vector<std::uint8_t> flags(n);
    FlagSweep expected;
    for (std::uint8_t& b : flags) {
      if (rng.uniform() < 0.1) {
        b = net::FlowDigest::kNoTcpFlags;  // counts as neither kind
        continue;
      }
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 63));
      const SegmentKind kind = classify_flags(net::TcpFlags{b});
      expected.syn += kind == SegmentKind::kSyn ? 1 : 0;
      expected.syn_ack += kind == SegmentKind::kSynAck ? 1 : 0;
    }
    EXPECT_EQ(sweep_flags_scalar(flags), expected) << "round " << round;
  }
}

TEST(BatchSweepTest, SimdKernelMatchesScalarOnRandomBuffers) {
  // Bit-for-bit equivalence of the dispatched kernel and the portable
  // loop, across sizes straddling the 16-byte vector width and across
  // arbitrary byte values (not just well-formed flag bytes).
  util::Rng rng(202);
  for (int round = 0; round < 200; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 1000));
    std::vector<std::uint8_t> flags(n);
    for (std::uint8_t& b : flags) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    EXPECT_EQ(sweep_flags(flags), sweep_flags_scalar(flags))
        << "n=" << n << " backend=" << sweep_flags_backend();
  }
  EXPECT_FALSE(sweep_flags_backend().empty());
}

TEST(BatchSweepTest, KnownCountsEmptySpanAndVectorTails) {
  for (const std::size_t pad : {0u, 1u, 15u, 16u, 17u, 33u}) {
    std::vector<std::uint8_t> flags;
    flags.insert(flags.end(), 20, net::TcpFlags::kSyn);
    flags.insert(flags.end(), 7,
                 net::TcpFlags::kSyn | net::TcpFlags::kAck);
    flags.insert(flags.end(), 5, net::FlowDigest::kNoTcpFlags);
    flags.insert(flags.end(), pad, net::TcpFlags::kAck);  // pure ACKs
    const FlagSweep got = sweep_flags(flags);
    EXPECT_EQ(got.syn, 20u) << "pad " << pad;
    EXPECT_EQ(got.syn_ack, 7u) << "pad " << pad;
  }
  EXPECT_EQ(sweep_flags({}), (FlagSweep{}));
  EXPECT_EQ(sweep_flags_scalar({}), (FlagSweep{}));
}

}  // namespace
}  // namespace syndog::classify
