#include <gtest/gtest.h>

#include <cmath>

#include "syndog/core/agent.hpp"
#include "syndog/core/locator.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/net/packet.hpp"

namespace syndog::core {
namespace {

using util::SimTime;

// --- SynDog detector -----------------------------------------------------------

TEST(SynDogTest, NormalizationAndCusumByHand) {
  SynDogParams params;
  params.a = 0.35;
  params.threshold = 1.05;
  params.ewma_alpha = 0.9;
  SynDog dog(params);

  // Period 0: K unprimed -> normalize by the current SYN/ACK count.
  PeriodReport r0 = dog.observe_period(1050, 1000);
  EXPECT_DOUBLE_EQ(r0.delta, 50.0);
  EXPECT_DOUBLE_EQ(r0.x, 0.05);
  EXPECT_DOUBLE_EQ(r0.k_estimate, 1000.0);
  EXPECT_DOUBLE_EQ(r0.y, 0.0);  // 0.05 - 0.35 clamps to 0
  EXPECT_FALSE(r0.alarm);

  // Period 1: normalized by K(0) = 1000, then K updates per Eq. (1).
  PeriodReport r1 = dog.observe_period(2000, 1100);
  EXPECT_DOUBLE_EQ(r1.x, 900.0 / 1000.0);
  EXPECT_DOUBLE_EQ(r1.k_estimate, 0.9 * 1000.0 + 0.1 * 1100.0);
  EXPECT_DOUBLE_EQ(r1.y, 0.9 - 0.35);
  EXPECT_FALSE(r1.alarm);

  // Period 2: attack continues; y crosses N.
  PeriodReport r2 = dog.observe_period(2010, 1000);
  EXPECT_NEAR(r2.y, 0.55 + 1010.0 / 1010.0 - 0.35, 1e-12);
  EXPECT_TRUE(r2.alarm);
}

TEST(SynDogTest, SpoofedFloodDoesNotPoisonK) {
  // The SYN/ACK stream is driven by legitimate traffic only, so K must
  // stay at the pre-attack level during a flood.
  SynDog dog(SynDogParams::paper_defaults());
  for (int n = 0; n < 50; ++n) {
    (void)dog.observe_period(1050, 1000);
  }
  const double k_before = dog.k();
  for (int n = 0; n < 10; ++n) {
    (void)dog.observe_period(5000, 1000);  // flood: SYNs up, SYN/ACKs flat
  }
  EXPECT_NEAR(dog.k(), k_before, 1.0);
}

TEST(SynDogTest, KFloorPreventsDivisionBlowup) {
  SynDog dog(SynDogParams::paper_defaults());
  const PeriodReport r = dog.observe_period(10, 0);  // idle link
  EXPECT_TRUE(std::isfinite(r.x));
  EXPECT_DOUBLE_EQ(r.x, 10.0);  // normalized by the floor of 1
}

TEST(SynDogTest, AlarmClearsAfterFloodEnds) {
  SynDog dog(SynDogParams::paper_defaults());
  for (int n = 0; n < 20; ++n) (void)dog.observe_period(1050, 1000);
  for (int n = 0; n < 10; ++n) (void)dog.observe_period(3000, 1000);
  EXPECT_TRUE(dog.alarmed());
  // Normal traffic resumes; y decays by (a - c) per period back to 0.
  int periods = 0;
  while (dog.alarmed()) {
    (void)dog.observe_period(1050, 1000);
    ASSERT_LT(++periods, 100);
  }
  EXPECT_GT(periods, 3);  // decay is gradual, not instant
}

TEST(SynDogTest, MinDetectableRateEquation8) {
  // f_min = (a - c) * K / t0.
  EXPECT_NEAR(SynDog::min_detectable_rate(0.35, 0.0, 2114.0,
                                          SimTime::seconds(20)),
              37.0, 0.05);
  EXPECT_NEAR(SynDog::min_detectable_rate(0.35, 0.0, 100.0,
                                          SimTime::seconds(20)),
              1.75, 0.01);
  // Instance version uses the live K estimate.
  SynDog dog(SynDogParams::paper_defaults());
  for (int n = 0; n < 200; ++n) (void)dog.observe_period(2200, 2114);
  EXPECT_NEAR(dog.min_detectable_rate(), 37.0, 0.5);
}

TEST(SynDogTest, ExpectedDetectionPeriodsEquation7) {
  SynDog dog(SynDogParams::paper_defaults());
  for (int n = 0; n < 200; ++n) (void)dog.observe_period(2200, 2114);
  // Design point: fi such that drift = h = 2a gives N/(h-a) = 3 periods.
  const double fi_design = 0.7 * 2114.0 / 20.0;
  EXPECT_NEAR(dog.expected_detection_periods(fi_design), 3.0, 0.1);
  // Below the floor the bound is infinite.
  EXPECT_TRUE(std::isinf(dog.expected_detection_periods(10.0)));
}

TEST(SynDogTest, SiteTunedParametersLowerTheFloor) {
  const SynDogParams tuned = SynDogParams::site_tuned_unc();
  EXPECT_NEAR(SynDog::min_detectable_rate(tuned.a, 0.0, 2114.0,
                                          SimTime::seconds(20)),
              21.1, 0.3);  // paper: "decreases from 37 to 15" (with c > 0)
  EXPECT_NEAR(SynDog::min_detectable_rate(tuned.a, 0.05, 2114.0,
                                          SimTime::seconds(20)),
              15.9, 0.3);
}

TEST(SynDogTest, ResetRestoresColdState) {
  SynDog dog(SynDogParams::paper_defaults());
  (void)dog.observe_period(5000, 100);
  dog.reset();
  EXPECT_DOUBLE_EQ(dog.y(), 0.0);
  EXPECT_DOUBLE_EQ(dog.k(), 0.0);
  EXPECT_EQ(dog.periods_observed(), 0);
}

TEST(SynDogTest, ValidationAndErrors) {
  SynDogParams bad = SynDogParams::paper_defaults();
  bad.a = 0.0;
  EXPECT_THROW(SynDog{bad}, std::invalid_argument);
  bad = SynDogParams::paper_defaults();
  bad.h = 0.3;  // h <= a
  EXPECT_THROW(SynDog{bad}, std::invalid_argument);
  bad = SynDogParams::paper_defaults();
  bad.ewma_alpha = 1.0;
  EXPECT_THROW(SynDog{bad}, std::invalid_argument);

  SynDog dog(SynDogParams::paper_defaults());
  EXPECT_THROW((void)dog.observe_period(-1, 0), std::invalid_argument);
}

TEST(SynDogTest, RunOverSeriesMatchesIncremental) {
  const std::vector<std::int64_t> syns = {1000, 1100, 3000, 3000, 1000};
  const std::vector<std::int64_t> acks = {950, 1050, 950, 950, 950};
  const auto reports =
      run_over_series(SynDogParams::paper_defaults(), syns, acks);
  SynDog dog(SynDogParams::paper_defaults());
  for (std::size_t n = 0; n < syns.size(); ++n) {
    const PeriodReport r = dog.observe_period(syns[n], acks[n]);
    EXPECT_DOUBLE_EQ(r.y, reports[n].y);
    EXPECT_EQ(r.alarm, reports[n].alarm);
  }
  EXPECT_THROW((void)run_over_series(SynDogParams::paper_defaults(),
                                     {1, 2}, {1}),
               std::invalid_argument);
}

TEST(SynDogTest, TracedCusumUpdatesMirrorReports) {
  // Flood-shaped series: quiet, then SYNs far outrunning SYN/ACKs so the
  // alarm raises, then quiet again so it clears — exercising every event
  // kind the detector can emit. The bounded-CUSUM cap keeps yn from
  // climbing so high during the flood that it cannot decay back below N
  // within the tail.
  std::vector<std::int64_t> syns(30, 1000);
  std::vector<std::int64_t> acks(30, 950);
  for (std::size_t n = 10; n < 20; ++n) syns[n] = 3000;

  SynDogParams params = SynDogParams::paper_defaults();
  params.statistic_cap = 2.0;
  obs::EventTracer tracer(256);
  obs::Registry registry;
  const auto reports =
      run_over_series(params, syns, acks, &tracer, &registry);

  std::size_t updates = 0;
  bool saw_raise = false;
  bool saw_clear = false;
  const util::SimTime t0 =
      SynDogParams::paper_defaults().observation_period;
  for (const obs::Event& e : tracer.events()) {
    if (const auto* u = std::get_if<obs::CusumUpdate>(&e.payload)) {
      const PeriodReport& r = reports[updates];
      EXPECT_EQ(u->period, r.period_index);
      EXPECT_DOUBLE_EQ(u->delta, r.delta);
      EXPECT_DOUBLE_EQ(u->k, r.k_estimate);
      EXPECT_DOUBLE_EQ(u->x, r.x);
      EXPECT_DOUBLE_EQ(u->y, r.y);
      EXPECT_EQ(e.at, t0 * (r.period_index + 1));
      ++updates;
    } else if (std::get_if<obs::AlarmRaised>(&e.payload)) {
      saw_raise = true;
    } else if (std::get_if<obs::AlarmCleared>(&e.payload)) {
      saw_clear = true;
    }
  }
  EXPECT_EQ(updates, reports.size());
  EXPECT_TRUE(saw_raise);
  EXPECT_TRUE(saw_clear);

  const obs::MetricsSnapshot snap = registry.snapshot();
  std::uint64_t periods = 0;
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == "syndog.periods") periods = c.value;
  }
  EXPECT_EQ(periods, reports.size());
}

// --- Sniffer ---------------------------------------------------------------------

net::Packet packet_with_flags(net::TcpFlags flags) {
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.flags = flags;
  return net::make_tcp_packet(spec);
}

TEST(SnifferTest, OutboundCountsOnlyPureSyns) {
  Sniffer sniffer(SnifferRole::kOutbound);
  sniffer.on_packet(packet_with_flags(net::TcpFlags::syn_only()));
  sniffer.on_packet(packet_with_flags(net::TcpFlags::syn_ack()));
  sniffer.on_packet(packet_with_flags(net::TcpFlags::ack_only()));
  sniffer.on_packet(packet_with_flags(net::TcpFlags::rst_only()));
  EXPECT_EQ(sniffer.period_count(), 1u);
  EXPECT_EQ(sniffer.packets_seen(), 4u);
}

TEST(SnifferTest, InboundCountsOnlySynAcks) {
  Sniffer sniffer(SnifferRole::kInbound);
  sniffer.on_packet(packet_with_flags(net::TcpFlags::syn_only()));
  sniffer.on_packet(packet_with_flags(net::TcpFlags::syn_ack()));
  EXPECT_EQ(sniffer.period_count(), 1u);
}

TEST(SnifferTest, HarvestResetsPeriodButKeepsLifetime) {
  Sniffer sniffer(SnifferRole::kOutbound);
  for (int i = 0; i < 5; ++i) {
    sniffer.on_packet(packet_with_flags(net::TcpFlags::syn_only()));
  }
  EXPECT_EQ(sniffer.harvest(), 5u);
  EXPECT_EQ(sniffer.period_count(), 0u);
  EXPECT_EQ(sniffer.lifetime_count(), 5u);
  EXPECT_EQ(sniffer.harvest(), 0u);
}

TEST(SnifferTest, FramePathAgreesWithPacketPath) {
  Sniffer by_packet(SnifferRole::kOutbound);
  Sniffer by_frame(SnifferRole::kOutbound);
  for (const net::TcpFlags flags :
       {net::TcpFlags::syn_only(), net::TcpFlags::syn_ack(),
        net::TcpFlags::ack_only(), net::TcpFlags::fin_ack()}) {
    const net::Packet pkt = packet_with_flags(flags);
    by_packet.on_packet(pkt);
    by_frame.on_frame(net::encode_frame(pkt));
  }
  EXPECT_EQ(by_packet.period_count(), by_frame.period_count());
}

// --- SourceLocator ---------------------------------------------------------------

TEST(LocatorTest, RanksSpoofingStations) {
  SourceLocator locator(*net::Ipv4Prefix::parse("10.1.0.0/16"));
  const auto spoofed_syn = [&](std::uint32_t host) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(host);
    spec.src_ip = net::Ipv4Address(240, 0, 0, host);  // outside the stub
    spec.dst_ip = net::Ipv4Address(198, 51, 100, 10);
    return net::make_syn(spec);
  };
  const auto honest_syn = [&](std::uint32_t host) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(host);
    spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
    spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
    return net::make_syn(spec);
  };

  for (int i = 0; i < 100; ++i) {
    locator.on_packet(SimTime::seconds(i), spoofed_syn(7));
  }
  for (int i = 0; i < 20; ++i) {
    locator.on_packet(SimTime::seconds(i), spoofed_syn(9));
    locator.on_packet(SimTime::seconds(i), honest_syn(3));
  }

  const auto suspects = locator.suspects();
  ASSERT_EQ(suspects.size(), 2u);  // host 3 never spoofed
  EXPECT_EQ(suspects[0].mac, net::MacAddress::for_host(7));
  EXPECT_EQ(suspects[0].spoofed_syns, 100u);
  EXPECT_EQ(suspects[1].mac, net::MacAddress::for_host(9));
  EXPECT_EQ(locator.spoofed_total(), 120u);

  const auto stations = locator.stations();
  EXPECT_EQ(stations.size(), 3u);
  EXPECT_EQ(stations[0].mac, net::MacAddress::for_host(7));
}

TEST(LocatorTest, IgnoresNonSynTraffic) {
  SourceLocator locator(*net::Ipv4Prefix::parse("10.1.0.0/16"));
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(240, 0, 0, 1);
  spec.dst_ip = net::Ipv4Address(198, 51, 100, 10);
  spec.flags = net::TcpFlags::ack_only();
  locator.on_packet(SimTime::zero(), net::make_tcp_packet(spec));
  EXPECT_TRUE(locator.suspects().empty());
  EXPECT_EQ(locator.spoofed_total(), 0u);
}

TEST(LocatorTest, ResetClearsEvidence) {
  SourceLocator locator(*net::Ipv4Prefix::parse("10.1.0.0/16"));
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(7);
  spec.src_ip = net::Ipv4Address(240, 0, 0, 1);
  spec.dst_ip = net::Ipv4Address(198, 51, 100, 10);
  locator.on_packet(SimTime::zero(), net::make_syn(spec));
  EXPECT_EQ(locator.suspects().size(), 1u);
  locator.reset();
  EXPECT_TRUE(locator.suspects().empty());
  EXPECT_TRUE(locator.stations().empty());
}

}  // namespace
}  // namespace syndog::core
