#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "syndog/stats/histogram.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/stats/quantile.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::stats {
namespace {

// --- OnlineStats --------------------------------------------------------------

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(OnlineStatsTest, EmptyIsSafe) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  util::Rng rng(3);
  OnlineStats whole;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

// --- Ewma -------------------------------------------------------------------

TEST(EwmaTest, FirstSamplePrimesDirectly) {
  Ewma e(0.9);
  EXPECT_FALSE(e.primed());
  e.add(100.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 100.0);  // no cold-start bias toward zero
}

TEST(EwmaTest, MatchesPaperEquationOne) {
  // K(n) = alpha*K(n-1) + (1-alpha)*SYNACK(n), Eq. (1) of the paper.
  Ewma e(0.9);
  e.add(100.0);
  e.add(200.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.9 * 100.0 + 0.1 * 200.0);
  e.add(50.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.9 * 110.0 + 0.1 * 50.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.8);
  for (int i = 0; i < 200; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(EwmaTest, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.0), std::invalid_argument);
  EXPECT_THROW(Ewma(-0.5), std::invalid_argument);
}

TEST(EwmaMeanVarTest, TracksMoments) {
  util::Rng rng(5);
  EwmaMeanVar mv(0.99);
  for (int i = 0; i < 20000; ++i) mv.add(rng.normal(7.0, 3.0));
  EXPECT_NEAR(mv.mean(), 7.0, 0.5);
  EXPECT_NEAR(mv.stddev(), 3.0, 0.5);
}

// --- quantiles --------------------------------------------------------------

TEST(P2QuantileTest, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2QuantileTest, ApproximatesMedianOfUniform) {
  util::Rng rng(7);
  P2Quantile q(0.5);
  for (int i = 0; i < 50000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2QuantileTest, ApproximatesTailQuantile) {
  util::Rng rng(9);
  P2Quantile q(0.95);
  ExactQuantiles exact;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential_mean(2.0);
    q.add(x);
    exact.add(x);
  }
  EXPECT_NEAR(q.value(), exact.quantile(0.95), 0.3);
}

TEST(P2QuantileTest, RejectsBadQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(ExactQuantilesTest, InterpolatesAndClamps) {
  ExactQuantiles q;
  q.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.5);
  EXPECT_DOUBLE_EQ(q.quantile(-1.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(ExactQuantiles{}.quantile(0.5), 0.0);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 25.0}) h.add(x);
  EXPECT_EQ(h.total(), 7);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count_in_bin(0), 2);  // 0.0 and 1.9
  EXPECT_EQ(h.count_in_bin(1), 1);  // 2.0
  EXPECT_EQ(h.count_in_bin(4), 1);  // 9.99
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_NEAR(h.cumulative_fraction(4), 1.0, 1e-12);
}

TEST(HistogramTest, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- series helpers ------------------------------------------------------------

TEST(SeriesTest, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
  EXPECT_EQ(pearson_correlation(xs, {7, 7, 7, 7, 7}), 0.0);  // constant
  EXPECT_THROW((void)pearson_correlation(xs, {1.0}), std::invalid_argument);
}

TEST(SeriesTest, AutocorrelationOfAlternatingSeries) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 2), 1.0, 0.02);
  EXPECT_EQ(autocorrelation(xs, 500), 0.0);  // lag beyond length
}

TEST(SeriesTest, FirstCrossing) {
  EXPECT_EQ(first_crossing({0.1, 0.5, 1.2, 0.3}, 1.0), 2);
  EXPECT_EQ(first_crossing({0.1, 0.5}, 1.0), -1);
  EXPECT_EQ(first_crossing({}, 1.0), -1);
  EXPECT_EQ(first_crossing({1.0}, 1.0), -1);  // strictly greater
}

TEST(SeriesTest, DownsampleMean) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ds = downsample_mean(xs, 2);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_DOUBLE_EQ(ds[0], 1.5);
  EXPECT_DOUBLE_EQ(ds[1], 3.5);
  EXPECT_DOUBLE_EQ(ds[2], 5.0);  // trailing partial group
  EXPECT_THROW((void)downsample_mean(xs, 0), std::invalid_argument);
}

TEST(SeriesTest, Difference) {
  const auto d = series_difference({5, 7}, {2, 10});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -3.0);
}

}  // namespace
}  // namespace syndog::stats
