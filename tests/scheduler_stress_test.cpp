// Scheduler hot-path stress tests.
//
// Three properties the allocation-free scheduler must hold:
//  1. Behavioral equivalence: randomized schedule/cancel/run_until
//     interleavings match a naive sorted-vector reference model,
//     including the run_until boundary semantics and the (time, schedule
//     order) tie-break the deterministic sidecars depend on.
//  2. Structural soundness of the slot arena: generation-tagged ids make
//     cancels of executed/stale ids no-ops, slots recycle safely.
//  3. Zero heap allocations per event in steady state, proven with
//     testsupport::AllocGuard (tests/support/alloc_guard.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "support/alloc_guard.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/packet_pool.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/inline_callback.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

namespace syndog::sim {
namespace {

using util::SimTime;

// --- InlineCallback ---------------------------------------------------------

TEST(InlineCallbackTest, InvokesAndMovesWithoutAllocating) {
  int hits = 0;
  util::InlineCallback<64> cb = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(hits, 1);

  util::InlineCallback<64> moved = std::move(cb);
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 2);

  moved.reset();
  EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(InlineCallbackTest, AcceptsMoveOnlyCaptures) {
  // std::function cannot hold this lambda; InlineCallback must.
  auto ptr = std::make_unique<int>(41);
  util::InlineCallback<64> cb = [p = std::move(ptr)] { ++*p; };
  cb();
  cb();
}

TEST(InlineCallbackTest, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> n;
    explicit Probe(std::shared_ptr<int> n) : n(std::move(n)) {}
    Probe(Probe&&) noexcept = default;
    Probe(const Probe&) = delete;
    ~Probe() {
      if (n) ++*n;
    }
    void operator()() const {}
  };
  {
    util::InlineCallback<64> cb = Probe{counter};
    util::InlineCallback<64> other = std::move(cb);
    other();
  }
  // Exactly one live Probe existed at a time; one destruction with state.
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(counter.use_count(), 1);
}

// --- PacketPool -------------------------------------------------------------

TEST(PacketPoolTest, RecyclesSlotsThroughHandles) {
  PacketPool pool;
  {
    auto a = pool.acquire(net::Packet{});
    auto b = pool.acquire(net::Packet{});
    EXPECT_EQ(pool.in_use(), 2u);
    EXPECT_EQ(pool.capacity(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
  // Released slots are reused; the pool does not grow.
  auto c = pool.acquire(net::Packet{});
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.capacity(), 2u);
}

TEST(PacketPoolTest, HandleMoveTransfersOwnership) {
  PacketPool pool;
  net::Packet p;
  p.ip.ttl = 42;
  auto a = pool.acquire(p);
  auto b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b->ip.ttl, 42);
  EXPECT_EQ(pool.in_use(), 1u);
  b = PacketPool::Handle{};
  EXPECT_EQ(pool.in_use(), 0u);
}

// --- Randomized cross-check against a reference model -----------------------

TEST(SchedulerStressTest, RandomizedOpsMatchReferenceModel) {
  util::Rng rng(0x5ced5eed);
  Scheduler sched;

  // Reference model: the queue as a flat list of entries carrying the
  // schedule-order stamp. cancel removes entries eagerly (the scheduler
  // keeps no tombstones), so run_until's time bound is exact.
  struct RefEntry {
    SimTime at;
    std::uint64_t seq;
    int tag;
  };
  std::vector<RefEntry> ref;
  std::vector<int> actual;
  std::vector<int> expected;
  std::vector<std::pair<EventId, int>> issued;  // every id ever returned
  std::uint64_t seq = 0;
  int next_tag = 0;

  const auto min_entry = [&ref] {
    return std::min_element(ref.begin(), ref.end(),
                            [](const RefEntry& a, const RefEntry& b) {
                              if (a.at != b.at) return a.at < b.at;
                              return a.seq < b.seq;
                            });
  };
  const auto ref_run_until = [&](SimTime end) {
    for (;;) {
      const auto it = min_entry();
      if (it == ref.end() || it->at > end) return;
      expected.push_back(it->tag);
      ref.erase(it);
    }
  };
  const auto ref_pending = [&ref] { return ref.size(); };

  for (int round = 0; round < 4000; ++round) {
    const auto op = rng.uniform_int(0, 9);
    if (op < 6) {
      const SimTime at =
          sched.now() + SimTime::microseconds(rng.uniform_int(0, 40));
      const int tag = next_tag++;
      const EventId id =
          sched.schedule_at(at, [tag, &actual] { actual.push_back(tag); });
      ref.push_back(RefEntry{at, seq++, tag});
      issued.emplace_back(id, tag);
    } else if (op < 8) {
      if (issued.empty()) continue;
      // Cancel a random id from the full history: pending, executed,
      // doubly-cancelled, or stale ids pointing at recycled slots.
      const auto& [id, tag] = issued[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1))];
      sched.cancel(id);
      std::erase_if(ref, [tag](const RefEntry& e) { return e.tag == tag; });
    } else {
      const SimTime end =
          sched.now() + SimTime::microseconds(rng.uniform_int(0, 60));
      sched.run_until(end);
      ref_run_until(end);
      ASSERT_EQ(actual, expected) << "diverged at round " << round;
      ASSERT_EQ(sched.pending(), ref_pending()) << "round " << round;
    }
  }
  sched.run_all();
  ref_run_until(SimTime::hours(24 * 365));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(ref_pending(), 0u);
}

// --- Tie-break determinism ---------------------------------------------------

TEST(SchedulerStressTest, TieBreakOrderIsScheduleOrder) {
  util::Rng rng(0xace0fba5e);
  Scheduler sched;
  std::vector<int> actual;
  struct Expected {
    SimTime at;
    int idx;
  };
  std::vector<Expected> expected;
  // Times drawn from a tiny set so nearly every event ties with others;
  // the contract is stable (time, schedule order) — exactly the order
  // the pre-arena scheduler produced, which the deterministic BENCH
  // sidecars are pinned to.
  for (int i = 0; i < 2000; ++i) {
    const SimTime at = SimTime::milliseconds(rng.uniform_int(0, 7));
    sched.schedule_at(at, [i, &actual] { actual.push_back(i); });
    expected.push_back(Expected{at, i});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.at < b.at;
                   });
  sched.run_all();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i].idx) << "position " << i;
  }
}

// --- Zero allocations in steady state ----------------------------------------

TEST(SchedulerStressTest, SteadyStateEventLoopDoesNotAllocate) {
  Scheduler sched;

  // Self-sustaining churn: each event reschedules itself and also
  // schedules-then-cancels a decoy, exercising the schedule, eager
  // heap-removal, and pop paths every iteration.
  struct Churn {
    Scheduler* sched;
    void operator()() const {
      const EventId decoy = sched->schedule_after(
          SimTime::microseconds(2), [] {});
      sched->cancel(decoy);
      sched->schedule_after(SimTime::microseconds(1), Churn{sched});
    }
  };
  for (int i = 0; i < 64; ++i) {
    sched.schedule_after(SimTime::microseconds(i + 1), Churn{&sched});
  }

  // Packet ping through a Link: every delivery re-sends the packet, so
  // pool slots are acquired and released continuously.
  struct Pinger {
    Link* link = nullptr;
    void operator()(const net::Packet& pkt) const { link->send(pkt); }
  };
  auto pinger = std::make_unique<Pinger>();
  LinkParams params;
  params.delay = SimTime::microseconds(50);
  Link link(sched, params,
            [p = pinger.get()](const net::Packet& pkt) { (*p)(pkt); }, 1);
  pinger->link = &link;
  net::Packet seedpkt;
  seedpkt.ip.ttl = 7;
  for (int i = 0; i < 16; ++i) link.send(seedpkt);

  // Warm-up: grow the slot arena, heap, freelists, and packet pool to
  // their steady-state footprint.
  sched.run_all(200000);

  testsupport::AllocGuard guard;
  sched.run_all(500000);

  EXPECT_EQ(guard.stop(), 0u)
      << "steady-state event loop must not touch the heap";
  EXPECT_GT(link.delivered(), 2000u);  // the ping ran through both phases
}

}  // namespace
}  // namespace syndog::sim
