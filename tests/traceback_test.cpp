#include <gtest/gtest.h>

#include <algorithm>

#include "syndog/traceback/ppm.hpp"
#include "syndog/traceback/spie.hpp"
#include "syndog/traceback/topology.hpp"

namespace syndog::traceback {
namespace {

// --- topology ----------------------------------------------------------------

TEST(TopologyTest, ChainShape) {
  const AttackTopology topo = AttackTopology::chain(8);
  EXPECT_EQ(topo.router_count(), 8u);
  ASSERT_EQ(topo.attacker_leaves().size(), 1u);
  const auto path = topo.path_from(topo.attacker_leaves()[0]);
  EXPECT_EQ(path.size(), 8u);
  // Leaf-first order ends at the victim-adjacent router (id 0).
  EXPECT_EQ(path.back(), 0u);
  EXPECT_EQ(topo.router(path.back()).next_hop, kNoRouter);
  EXPECT_EQ(topo.max_depth(), 8);
  EXPECT_THROW((void)AttackTopology::chain(0), std::invalid_argument);
}

TEST(TopologyTest, RandomTreeInvariants) {
  util::Rng rng(7);
  const AttackTopology topo = AttackTopology::random(20, 5, 15, rng);
  EXPECT_EQ(topo.attacker_leaves().size(), 20u);
  for (const RouterId leaf : topo.attacker_leaves()) {
    const auto path = topo.path_from(leaf);
    EXPECT_GE(path.size(), 2u);
    EXPECT_LE(static_cast<int>(path.size()), topo.max_depth());
    // Distances decrease by exactly one along the path.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_EQ(topo.router(path[i]).distance_to_victim,
                topo.router(path[i + 1]).distance_to_victim + 1);
    }
    EXPECT_EQ(topo.router(path.back()).distance_to_victim, 1);
  }
}

// --- PPM ----------------------------------------------------------------------

TEST(PpmTest, MarkedPacketCarriesConsistentEdge) {
  const AttackTopology topo = AttackTopology::chain(10);
  const auto path = topo.path_from(topo.attacker_leaves()[0]);
  const PpmMarker marker(0.2);
  util::Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    Mark mark;
    for (const RouterId hop : path) marker.process(mark, hop, rng);
    if (!mark.valid()) continue;
    // distance identifies the marking router's position from the end.
    ASSERT_LT(mark.distance, static_cast<int>(path.size()));
    const std::size_t idx = path.size() - 1 - mark.distance;
    EXPECT_EQ(mark.edge_start, path[idx]);
    if (idx + 1 < path.size()) {
      EXPECT_EQ(mark.edge_end, path[idx + 1]);
    } else {
      EXPECT_EQ(mark.edge_end, kNoRouter);
    }
  }
}

TEST(PpmTest, ReconstructsChainPath) {
  const AttackTopology topo = AttackTopology::chain(8);
  const auto path = topo.path_from(topo.attacker_leaves()[0]);
  const PpmMarker marker(0.1);
  PpmCollector collector;
  util::Rng rng(5);
  while (!collector.covers_path(path)) {
    Mark mark;
    for (const RouterId hop : path) marker.process(mark, hop, rng);
    collector.observe(mark);
    ASSERT_LT(collector.packets_observed(), 100000u);
  }
  const auto reconstructed = collector.reconstruct_chain();
  ASSERT_TRUE(reconstructed.has_value());
  EXPECT_EQ(*reconstructed, path);
  EXPECT_EQ(collector.distinct_edges(), path.size());
}

TEST(PpmTest, PacketsNeededNearTheoreticalBound) {
  // E[X] <= ln(d)/(p(1-p)^(d-1)); measure the mean over a few runs and
  // require the right order of magnitude.
  const AttackTopology topo = AttackTopology::chain(15);
  const double p = 0.04;  // Savage's recommended ~1/25
  double total = 0.0;
  const int runs = 10;
  for (int r = 0; r < runs; ++r) {
    util::Rng rng(100 + r);
    const auto packets =
        packets_until_traced(topo, topo.attacker_leaves()[0], p, rng);
    ASSERT_TRUE(packets.has_value());
    total += static_cast<double>(*packets);
  }
  const double mean = total / runs;
  const double bound = PpmCollector::expected_packets_bound(p, 15);
  EXPECT_GT(mean, bound / 10.0);
  EXPECT_LT(mean, bound * 3.0);
  // Even the idealized full-edge variant needs on the order of a hundred
  // received attack packets; the deployable fragment-encoded variant
  // multiplies this by orders of magnitude.
  EXPECT_GT(mean, 50.0);
}

TEST(PpmTest, Validation) {
  EXPECT_THROW(PpmMarker(0.0), std::invalid_argument);
  EXPECT_THROW(PpmMarker(1.0), std::invalid_argument);
  EXPECT_THROW((void)PpmCollector::expected_packets_bound(0.5, 0),
               std::invalid_argument);
}

// --- Bloom filter / SPIE ----------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1 << 14, 4);
  util::Rng rng(9);
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 1000; ++i) {
    inserted.push_back(rng.next_u64());
    filter.insert(inserted.back());
  }
  for (const std::uint64_t d : inserted) {
    EXPECT_TRUE(filter.maybe_contains(d));
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  BloomFilter filter(1 << 14, 4);
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) filter.insert(rng.next_u64());
  const double predicted = filter.expected_false_positive_rate();
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    false_positives += filter.maybe_contains(rng.next_u64()) ? 1 : 0;
  }
  const double measured = static_cast<double>(false_positives) / probes;
  EXPECT_NEAR(measured, predicted, std::max(0.01, predicted));
  EXPECT_LT(measured, 0.05);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter(1024, 3);
  filter.insert(42);
  EXPECT_TRUE(filter.maybe_contains(42));
  filter.clear();
  EXPECT_FALSE(filter.maybe_contains(42));
  EXPECT_EQ(filter.inserted(), 0u);
  EXPECT_EQ(filter.fill_ratio(), 0.0);
}

TEST(SpieTest, TracesSinglePacketExactly) {
  util::Rng topo_rng(13);
  const AttackTopology topo = AttackTopology::random(6, 4, 10, topo_rng);
  SpieSystem spie(topo, SpieSystem::Params{});
  util::Rng rng(17);
  const RouterId leaf = topo.attacker_leaves()[2];
  const std::uint64_t digest = spie.forward_attack_packet(leaf, rng);

  std::vector<RouterId> traced = spie.trace(digest);
  std::vector<RouterId> expected = topo.path_from(leaf);
  std::sort(traced.begin(), traced.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(traced, expected);  // empty filters: no false positives
}

TEST(SpieTest, CrossTrafficCausesFalsePositiveBranches) {
  const AttackTopology topo = AttackTopology::chain(6);
  SpieSystem::Params params;
  params.bits_per_router = 1 << 10;  // deliberately small tables
  SpieSystem spie(topo, params);
  util::Rng rng(19);
  const std::uint64_t digest =
      spie.forward_attack_packet(topo.attacker_leaves()[0], rng);
  // Saturate every router with unrelated traffic.
  for (RouterId id = 0; id < topo.router_count(); ++id) {
    for (int i = 0; i < 2000; ++i) {
      spie.forward_cross_traffic(id, rng.next_u64());
    }
    EXPECT_GT(spie.router_filter(id).fill_ratio(), 0.9);
  }
  // The true path is still found (no false negatives) but query quality
  // has collapsed — and a *fresh* digest that never crossed the network
  // now traces to garbage.
  const std::vector<RouterId> traced = spie.trace(digest);
  EXPECT_GE(traced.size(), topo.router_count());
  EXPECT_FALSE(spie.trace(rng.next_u64()).empty());
}

TEST(SpieTest, StateCostScalesWithRouters) {
  util::Rng rng(23);
  const AttackTopology topo = AttackTopology::random(10, 5, 12, rng);
  SpieSystem::Params params;
  params.bits_per_router = 1 << 18;
  const SpieSystem spie(topo, params);
  EXPECT_EQ(spie.total_state_bytes(),
            topo.router_count() * ((1u << 18) / 8));
}

}  // namespace
}  // namespace syndog::traceback
