// Failure-injection and degenerate-condition tests: corrupted frames
// through the full agent path, idle and dead links, extreme counts, and
// the GLR comparator's unknown-shift detection.
#include <gtest/gtest.h>

#include "syndog/core/agent.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/detect/glr.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/rng.hpp"

namespace syndog {
namespace {

using util::SimTime;

// --- GLR ------------------------------------------------------------------------

TEST(GlrTest, QuietOnNoise) {
  detect::GlrDetector glr(detect::GlrParams{0.05, 0.05, 60, 12.0});
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_FALSE(glr.update(rng.normal(0.05, 0.05)).alarm) << i;
  }
}

TEST(GlrTest, DetectsShiftOfUnknownSizeAndLocatesIt) {
  detect::GlrDetector glr(detect::GlrParams{0.0, 0.1, 60, 12.0});
  util::Rng rng(2);
  for (int i = 0; i < 300; ++i) (void)glr.update(rng.normal(0.0, 0.1));
  int steps = 0;
  // A shift CUSUM-with-h=0.7 would be tuned for is 0.7; give GLR a much
  // smaller one it was never parameterized for.
  while (!glr.update(rng.normal(0.25, 0.1)).alarm) {
    ++steps;
    ASSERT_LT(steps, 100);
  }
  EXPECT_LT(steps, 20);
  // The maximizing change point should be near the true onset.
  EXPECT_NEAR(glr.change_point_age(), steps + 1, 4);
}

TEST(GlrTest, WindowBoundsWorkAndReset) {
  detect::GlrDetector glr(detect::GlrParams{0.0, 1.0, 4, 1000.0});
  for (int i = 0; i < 100; ++i) (void)glr.update(5.0);
  // With window 4 the statistic is bounded by (4*5)^2 / (2*1*4) = 50.
  EXPECT_LE(glr.statistic(), 50.0 + 1e-9);
  glr.reset();
  EXPECT_EQ(glr.statistic(), 0.0);
  EXPECT_EQ(glr.change_point_age(), 0);
  EXPECT_THROW(detect::GlrDetector(detect::GlrParams{0, 0.0, 60, 12}),
               std::invalid_argument);
  EXPECT_THROW(detect::GlrDetector(detect::GlrParams{0, 1.0, 1, 12}),
               std::invalid_argument);
}

// --- corrupted traffic through the agent ------------------------------------------

TEST(FailureInjectionTest, CorruptFramesNeverPerturbTheDetector) {
  // Feed the sniffers a mix of valid SYNs and mutilated garbage; only
  // the valid SYNs may count.
  core::Sniffer sniffer(core::SnifferRole::kOutbound);
  util::Rng rng(3);
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  const net::ByteBuffer valid = net::encode_frame(net::make_syn(spec));

  std::uint64_t injected_valid = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.bernoulli(0.3)) {
      sniffer.on_frame(valid);
      ++injected_valid;
    } else {
      net::ByteBuffer garbage(
          static_cast<std::size_t>(rng.uniform_int(0, 80)));
      for (auto& b : garbage) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      sniffer.on_frame(garbage);
    }
  }
  EXPECT_EQ(sniffer.lifetime_count(), injected_valid);
}

TEST(FailureInjectionTest, AgentSurvivesNonIpAndFragmentStorm) {
  sim::StubNetworkParams params;
  params.num_hosts = 2;
  sim::StubNetworkSim network(params);
  network.set_uplink_sink();
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());

  util::Rng rng(5);
  // A storm of fragmented pseudo-TCP packets leaving the stub: none may
  // be counted (no readable flags), so no alarm can arise.
  for (int i = 0; i < 2000; ++i) {
    net::TcpPacketSpec spec;
    spec.src_ip = params.stub_prefix.host(1);
    spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
    spec.flags = net::TcpFlags::syn_only();
    net::Packet pkt = net::make_tcp_packet(spec);
    pkt.ip.frag_flags_offset = static_cast<std::uint16_t>(
        rng.uniform_int(1, net::Ipv4Header::kFragOffsetMask));
    network.replay_at_router(SimTime::milliseconds(10 * i), pkt);
  }
  network.run_until(SimTime::minutes(2));
  EXPECT_FALSE(agent.ever_alarmed());
  EXPECT_EQ(agent.outbound_sniffer().lifetime_count(), 0u);
  EXPECT_GT(agent.outbound_sniffer().packets_seen(), 0u);
}

// --- degenerate traffic conditions ----------------------------------------------

TEST(FailureInjectionTest, IdleSiteNeverDividesByZeroOrAlarms) {
  core::SynDog dog(core::SynDogParams::paper_defaults());
  for (int n = 0; n < 1000; ++n) {
    const core::PeriodReport r = dog.observe_period(0, 0);
    ASSERT_FALSE(r.alarm);
    ASSERT_EQ(r.x, 0.0);
    ASSERT_EQ(r.y, 0.0);
  }
  // A lone SYN on a dead link is suspicious in the raw-count sense but
  // must not trip the threshold by itself (x = 1 - a accumulates only
  // 0.65 per such period).
  EXPECT_FALSE(dog.observe_period(1, 0).alarm);
  EXPECT_TRUE(dog.observe_period(10, 0).alarm);  // a 10-SYN burst does
}

TEST(FailureInjectionTest, NegativeDeltaIsClampedNotBanked) {
  // A fault (post-outage SYN/ACK burst, duplication) can yield SYNACK >>
  // SYN in one period. yn = max(0, ...) absorbs one such step, but the
  // clamp must also stop the EWMA-normalized Xn from being absurd, and
  // the report must say the clamp fired.
  core::SynDogParams params = core::SynDogParams::paper_defaults();
  core::SynDog dog(params);
  for (int n = 0; n < 20; ++n) (void)dog.observe_period(100, 95);
  const core::PeriodReport clamped = dog.observe_period(100, 5000);
  EXPECT_TRUE(clamped.x_clamped);
  EXPECT_DOUBLE_EQ(clamped.x, -params.x_clamp_negative);
  EXPECT_EQ(clamped.y, 0.0);

  // Paper-exact mode (clamp disabled) still exists for the benches.
  params.x_clamp_negative = 0.0;
  core::SynDog raw(params);
  for (int n = 0; n < 20; ++n) (void)raw.observe_period(100, 95);
  const core::PeriodReport unclamped = raw.observe_period(100, 5000);
  EXPECT_FALSE(unclamped.x_clamped);
  EXPECT_LT(unclamped.x, -40.0);
  EXPECT_EQ(unclamped.y, 0.0);  // max(0, ·) already floors the statistic

  // Validation: a negative clamp is rejected.
  params.x_clamp_negative = -1.0;
  EXPECT_THROW(core::SynDog{params}, std::invalid_argument);
}

TEST(FailureInjectionTest, IdleDecayRidesKFloorWithoutNanOrAlarm) {
  // A live site that goes fully idle: K decays geometrically toward 0 and
  // the k_floor path takes over. Thousands of idle periods must produce
  // no NaN/Inf, no alarm, and no drift in yn.
  core::SynDog dog(core::SynDogParams::paper_defaults());
  for (int n = 0; n < 50; ++n) (void)dog.observe_period(2000, 1950);
  for (int n = 0; n < 5000; ++n) {
    const core::PeriodReport r = dog.observe_period(0, 0);
    ASSERT_TRUE(std::isfinite(r.x)) << n;
    ASSERT_TRUE(std::isfinite(r.y)) << n;
    ASSERT_TRUE(std::isfinite(r.k_estimate)) << n;
    ASSERT_GE(r.k_estimate, 0.0) << n;
    ASSERT_FALSE(r.alarm) << n;
    ASSERT_EQ(r.y, 0.0) << n;
  }
  // The floor keeps a small post-idle burst from dividing by ~0 into an
  // instant alarm, while a real burst still alarms on raw counts.
  EXPECT_FALSE(dog.observe_period(1, 0).alarm);
  EXPECT_TRUE(dog.observe_period(20, 0).alarm);
}

TEST(FailureInjectionTest, RearmKeepsCalibrationButClearsStatistic) {
  core::SynDog dog(core::SynDogParams::paper_defaults());
  for (int n = 0; n < 20; ++n) (void)dog.observe_period(100, 95);
  while (!dog.observe_period(2000, 95).alarm) {
  }
  const double k_before = dog.k();
  const std::int64_t periods_before = dog.periods_observed();
  dog.rearm();
  EXPECT_FALSE(dog.alarmed());
  EXPECT_EQ(dog.y(), 0.0);
  EXPECT_EQ(dog.k(), k_before);
  EXPECT_EQ(dog.periods_observed(), periods_before);

  dog.note_gap_periods(3);
  EXPECT_EQ(dog.periods_observed(), periods_before + 3);
  EXPECT_EQ(dog.gap_periods(), 3);
  EXPECT_THROW(dog.note_gap_periods(-1), std::invalid_argument);
}

TEST(FailureInjectionTest, HugeCountsDoNotOverflow) {
  core::SynDog dog(core::SynDogParams::paper_defaults());
  const std::int64_t big = 1'000'000'000;  // a Tbps-class interface
  for (int n = 0; n < 10; ++n) {
    const core::PeriodReport r = dog.observe_period(big, big - big / 100);
    ASSERT_TRUE(std::isfinite(r.x));
    ASSERT_TRUE(std::isfinite(r.y));
    ASSERT_TRUE(std::isfinite(r.k_estimate));
    ASSERT_FALSE(r.alarm);  // 1% gap is below a = 0.35
  }
}

TEST(FailureInjectionTest, TotalLinkLossLooksLikeAFlood) {
  // If the inbound link dies entirely, every outgoing SYN goes
  // unanswered — indistinguishable from a flood at the counter level,
  // and SYN-dog SHOULD alarm (the operator needs to look either way).
  core::SynDog dog(core::SynDogParams::paper_defaults());
  for (int n = 0; n < 20; ++n) (void)dog.observe_period(2000, 1900);
  int periods = 0;
  while (!dog.observe_period(2000, 0).alarm) {
    ASSERT_LT(++periods, 10);
  }
  EXPECT_LE(periods, 2);
}

TEST(FailureInjectionTest, SchedulerSurvivesEventStorm) {
  sim::Scheduler sched;
  std::uint64_t ran = 0;
  // 200k events in randomized order with cancellations sprinkled in.
  util::Rng rng(7);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 200000; ++i) {
    ids.push_back(sched.schedule_at(
        SimTime::nanoseconds(rng.uniform_int(0, 1'000'000'000)),
        [&ran] { ++ran; }));
  }
  for (int i = 0; i < 50000; ++i) {
    sched.cancel(ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))]);
  }
  sched.run_all();
  EXPECT_GE(ran, 150000u);
  EXPECT_LE(ran, 200000u);
  EXPECT_EQ(sched.pending(), 0u);
}

}  // namespace
}  // namespace syndog
