#include <gtest/gtest.h>

#include <sstream>

#include "syndog/net/packet.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::pcap {
namespace {

net::ByteBuffer sample_frame(std::uint32_t host) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(host);
  spec.dst_mac = net::MacAddress::for_host(0xffffff);
  spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = static_cast<std::uint16_t>(30000 + host);
  spec.dst_port = 80;
  return net::encode_frame(net::make_syn(spec));
}

TEST(PcapTest, WriteReadRoundTripMicroseconds) {
  std::stringstream buf;
  Writer writer(buf);
  const net::ByteBuffer f1 = sample_frame(1);
  const net::ByteBuffer f2 = sample_frame(2);
  writer.write(util::SimTime::from_seconds(1.5), f1);
  writer.write(util::SimTime::from_seconds(2.000001), f2);
  EXPECT_EQ(writer.records_written(), 2u);

  Reader reader(buf);
  EXPECT_FALSE(reader.header().nanosecond);
  EXPECT_FALSE(reader.header().swapped);
  EXPECT_EQ(reader.header().link_type, LinkType::kEthernet);

  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp, util::SimTime::from_seconds(1.5));
  EXPECT_EQ(r1->data, f1);
  EXPECT_EQ(r1->orig_len, f1.size());

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp.ns(), 2'000'001'000);  // 1 us resolution

  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
}

TEST(PcapTest, NanosecondResolutionPreserved) {
  std::stringstream buf;
  Writer writer(buf, LinkType::kEthernet, /*nanosecond=*/true);
  writer.write(util::SimTime::nanoseconds(123456789), sample_frame(1));
  Reader reader(buf);
  EXPECT_TRUE(reader.header().nanosecond);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp.ns(), 123456789);
}

TEST(PcapTest, SnaplenTruncatesButKeepsOrigLen) {
  std::stringstream buf;
  Writer writer(buf, LinkType::kEthernet, false, /*snaplen=*/40);
  const net::ByteBuffer frame = sample_frame(1);
  ASSERT_GT(frame.size(), 40u);
  writer.write(util::SimTime::zero(), frame);
  Reader reader(buf);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 40u);
  EXPECT_EQ(rec->orig_len, frame.size());
}

TEST(PcapTest, ReadsByteSwappedFiles) {
  // Hand-build a big-endian pcap file (as captured on a BE machine).
  std::string raw;
  const auto put_be32 = [&](std::uint32_t v) {
    raw.push_back(static_cast<char>(v >> 24));
    raw.push_back(static_cast<char>(v >> 16));
    raw.push_back(static_cast<char>(v >> 8));
    raw.push_back(static_cast<char>(v));
  };
  const auto put_be16 = [&](std::uint16_t v) {
    raw.push_back(static_cast<char>(v >> 8));
    raw.push_back(static_cast<char>(v));
  };
  put_be32(FileHeader::kMagicMicros);
  put_be16(2);
  put_be16(4);
  put_be32(0);
  put_be32(0);
  put_be32(65535);
  put_be32(1);  // Ethernet
  put_be32(10);  // ts sec
  put_be32(500000);  // ts usec
  put_be32(4);  // incl
  put_be32(4);  // orig
  raw += "\x01\x02\x03\x04";

  std::stringstream buf(raw);
  Reader reader(buf);
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_EQ(reader.header().snaplen, 65535u);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp, util::SimTime::from_seconds(10.5));
  ASSERT_EQ(rec->data.size(), 4u);
  EXPECT_EQ(rec->data[0], 0x01);
}

TEST(PcapTest, RejectsBadMagicAndEmptyFile) {
  std::stringstream empty;
  EXPECT_THROW(Reader{empty}, std::runtime_error);
  std::stringstream junk("not a pcap file at all");
  EXPECT_THROW(Reader{junk}, std::runtime_error);
}

TEST(PcapTest, DetectsTruncatedRecord) {
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::zero(), sample_frame(1));
  std::string raw = buf.str();
  raw.resize(raw.size() - 5);  // chop the tail of the frame
  std::stringstream damaged(raw);
  Reader reader(damaged);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
}

TEST(PcapTest, NegativeTimestampRejected) {
  std::stringstream buf;
  Writer writer(buf);
  EXPECT_THROW(
      writer.write(util::SimTime::nanoseconds(-1), sample_frame(1)),
      std::runtime_error);
}

TEST(PcapTest, FileHelpersRoundTrip) {
  const std::string path = testing::TempDir() + "syndog_pcap_test.pcap";
  std::vector<Record> records;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    Record rec;
    rec.timestamp = util::SimTime::milliseconds(i * 10);
    rec.data = sample_frame(i);
    rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
    records.push_back(std::move(rec));
  }
  write_file(path, records);
  const std::vector<Record> back = read_file(path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, records[i].timestamp);
    EXPECT_EQ(back[i].data, records[i].data);
  }
  // The frames inside the file decode back into the original packets.
  const auto decoded = net::decode_frame(back[0].data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_syn());
  std::remove(path.c_str());
}

TEST(PcapTest, ReadAllDrainsEverything) {
  std::stringstream buf;
  Writer writer(buf);
  for (int i = 0; i < 10; ++i) {
    writer.write(util::SimTime::seconds(i), sample_frame(1));
  }
  Reader reader(buf);
  EXPECT_EQ(reader.read_all().size(), 10u);
  EXPECT_EQ(reader.records_read(), 10u);
}

}  // namespace
}  // namespace syndog::pcap
