#include <gtest/gtest.h>

#include <sstream>

#include "syndog/net/packet.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::pcap {
namespace {

net::ByteBuffer sample_frame(std::uint32_t host) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(host);
  spec.dst_mac = net::MacAddress::for_host(0xffffff);
  spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = static_cast<std::uint16_t>(30000 + host);
  spec.dst_port = 80;
  return net::encode_frame(net::make_syn(spec));
}

TEST(PcapTest, WriteReadRoundTripMicroseconds) {
  std::stringstream buf;
  Writer writer(buf);
  const net::ByteBuffer f1 = sample_frame(1);
  const net::ByteBuffer f2 = sample_frame(2);
  writer.write(util::SimTime::from_seconds(1.5), f1);
  writer.write(util::SimTime::from_seconds(2.000001), f2);
  EXPECT_EQ(writer.records_written(), 2u);

  Reader reader(buf);
  EXPECT_FALSE(reader.header().nanosecond);
  EXPECT_FALSE(reader.header().swapped);
  EXPECT_EQ(reader.header().link_type, LinkType::kEthernet);

  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp, util::SimTime::from_seconds(1.5));
  EXPECT_EQ(r1->data, f1);
  EXPECT_EQ(r1->orig_len, f1.size());

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp.ns(), 2'000'001'000);  // 1 us resolution

  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
}

TEST(PcapTest, NanosecondResolutionPreserved) {
  std::stringstream buf;
  Writer writer(buf, LinkType::kEthernet, /*nanosecond=*/true);
  writer.write(util::SimTime::nanoseconds(123456789), sample_frame(1));
  Reader reader(buf);
  EXPECT_TRUE(reader.header().nanosecond);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp.ns(), 123456789);
}

TEST(PcapTest, SnaplenTruncatesButKeepsOrigLen) {
  std::stringstream buf;
  Writer writer(buf, LinkType::kEthernet, false, /*snaplen=*/40);
  const net::ByteBuffer frame = sample_frame(1);
  ASSERT_GT(frame.size(), 40u);
  writer.write(util::SimTime::zero(), frame);
  Reader reader(buf);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 40u);
  EXPECT_EQ(rec->orig_len, frame.size());
}

TEST(PcapTest, ReadsByteSwappedFiles) {
  // Hand-build a big-endian pcap file (as captured on a BE machine).
  std::string raw;
  const auto put_be32 = [&](std::uint32_t v) {
    raw.push_back(static_cast<char>(v >> 24));
    raw.push_back(static_cast<char>(v >> 16));
    raw.push_back(static_cast<char>(v >> 8));
    raw.push_back(static_cast<char>(v));
  };
  const auto put_be16 = [&](std::uint16_t v) {
    raw.push_back(static_cast<char>(v >> 8));
    raw.push_back(static_cast<char>(v));
  };
  put_be32(FileHeader::kMagicMicros);
  put_be16(2);
  put_be16(4);
  put_be32(0);
  put_be32(0);
  put_be32(65535);
  put_be32(1);  // Ethernet
  put_be32(10);  // ts sec
  put_be32(500000);  // ts usec
  put_be32(4);  // incl
  put_be32(4);  // orig
  raw += "\x01\x02\x03\x04";

  std::stringstream buf(raw);
  Reader reader(buf);
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_EQ(reader.header().snaplen, 65535u);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp, util::SimTime::from_seconds(10.5));
  ASSERT_EQ(rec->data.size(), 4u);
  EXPECT_EQ(rec->data[0], 0x01);
}

TEST(PcapTest, RejectsBadMagicAndEmptyFile) {
  std::stringstream empty;
  EXPECT_THROW(Reader{empty}, std::runtime_error);
  std::stringstream junk("not a pcap file at all");
  EXPECT_THROW(Reader{junk}, std::runtime_error);
}

TEST(PcapTest, DetectsTruncatedRecord) {
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::zero(), sample_frame(1));
  std::string raw = buf.str();
  raw.resize(raw.size() - 5);  // chop the tail of the frame
  std::stringstream damaged(raw);
  Reader reader(damaged);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
}

TEST(PcapTest, NegativeTimestampRejected) {
  std::stringstream buf;
  Writer writer(buf);
  EXPECT_THROW(
      writer.write(util::SimTime::nanoseconds(-1), sample_frame(1)),
      std::runtime_error);
}

TEST(PcapTest, FileHelpersRoundTrip) {
  const std::string path = testing::TempDir() + "syndog_pcap_test.pcap";
  std::vector<Record> records;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    Record rec;
    rec.timestamp = util::SimTime::milliseconds(i * 10);
    rec.data = sample_frame(i);
    rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
    records.push_back(std::move(rec));
  }
  write_file(path, records);
  const std::vector<Record> back = read_file(path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, records[i].timestamp);
    EXPECT_EQ(back[i].data, records[i].data);
  }
  // The frames inside the file decode back into the original packets.
  const auto decoded = net::decode_frame(back[0].data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_syn());
  std::remove(path.c_str());
}

TEST(PcapTest, ReadAllDrainsEverything) {
  std::stringstream buf;
  Writer writer(buf);
  for (int i = 0; i < 10; ++i) {
    writer.write(util::SimTime::seconds(i), sample_frame(1));
  }
  Reader reader(buf);
  EXPECT_EQ(reader.read_all().size(), 10u);
  EXPECT_EQ(reader.records_read(), 10u);
}

TEST(PcapTest, EndStateDistinguishesEofFromTruncation) {
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  Reader reader(buf);
  EXPECT_EQ(reader.end_state(), ReadEnd::kStreaming);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.end_state(), ReadEnd::kStreaming);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.end_state(), ReadEnd::kEof);
  EXPECT_FALSE(reader.truncated());
  // Terminal: further calls stay at EOF without touching the stream.
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.end_state(), ReadEnd::kEof);
}

TEST(PcapTest, PartialRecordHeaderIsTruncationNotEof) {
  // Cut *inside* the 16-byte record header — including inside its first
  // field, which a field-by-field reader cannot tell from clean EOF.
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  writer.write(util::SimTime::seconds(2), sample_frame(2));
  const std::string full = buf.str();
  const std::size_t second_record = full.size() - (16 + sample_frame(2).size());
  for (const std::size_t partial : {1u, 3u, 8u, 15u}) {
    std::stringstream damaged(full.substr(0, second_record + partial));
    Reader reader(damaged);
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.end_state(), ReadEnd::kTruncated)
        << "partial header of " << partial << " bytes";
  }
}

TEST(PcapTest, NextIntoReusesCallerBuffer) {
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  writer.write(util::SimTime::seconds(2), sample_frame(2));
  Reader reader(buf);
  Record rec;
  ASSERT_TRUE(reader.next_into(rec));
  EXPECT_EQ(rec.data, sample_frame(1));
  const auto* before = rec.data.data();
  ASSERT_TRUE(reader.next_into(rec));
  EXPECT_EQ(rec.data, sample_frame(2));
  EXPECT_EQ(rec.data.data(), before);  // same-size record: no reallocation
  EXPECT_FALSE(reader.next_into(rec));
}

/// Accepts nothing: every write fails immediately (disk-full stand-in).
class RefusingBuf final : public std::streambuf {
 protected:
  int_type overflow(int_type) override { return traits_type::eof(); }
  std::streamsize xsputn(const char*, std::streamsize) override { return 0; }
};

/// Swallows writes but fails on sync (buffered disk-full stand-in).
class UnsyncableBuf final : public std::streambuf {
 protected:
  int_type overflow(int_type ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
  int sync() override { return -1; }
};

TEST(PcapTest, WriterFailsLoudlyWhenStreamRefusesBytes) {
  RefusingBuf refusing;
  std::ostream out(&refusing);
  EXPECT_THROW(Writer writer(out), std::runtime_error);
}

TEST(PcapTest, WriteAfterStreamErrorThrowsInsteadOfSilentLoss) {
  std::stringstream buf;
  Writer writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  buf.setstate(std::ios::badbit);
  EXPECT_THROW(writer.write(util::SimTime::seconds(2), sample_frame(2)),
               std::runtime_error);
}

TEST(PcapTest, FlushSurfacesSyncFailure) {
  UnsyncableBuf unsyncable;
  std::ostream out(&unsyncable);
  Writer writer(out);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  EXPECT_THROW(writer.flush(), std::runtime_error);
}

}  // namespace
}  // namespace syndog::pcap
