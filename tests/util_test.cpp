#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "syndog/util/config.hpp"
#include "syndog/util/logging.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/sorted.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"
#include "syndog/util/time.hpp"

namespace syndog::util {
namespace {

// --- SimTime ---------------------------------------------------------------

TEST(SimTimeTest, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
  EXPECT_EQ(SimTime::minutes(2), SimTime::seconds(120));
  EXPECT_EQ(SimTime::hours(1), SimTime::minutes(60));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::seconds(5);
  const SimTime b = SimTime::seconds(3);
  EXPECT_EQ((a + b).to_seconds(), 8.0);
  EXPECT_EQ((a - b).to_seconds(), 2.0);
  EXPECT_EQ(a * std::int64_t{3}, SimTime::seconds(15));
  EXPECT_EQ(a / b, 1);  // integer division: whole intervals
  EXPECT_EQ(SimTime::seconds(60) / SimTime::seconds(20), 3);
}

TEST(SimTimeTest, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(-0.25).ns(), -250'000'000);
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_GE(SimTime::seconds(2), SimTime::seconds(2));
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTimeTest, ToStringFormat) {
  EXPECT_EQ(SimTime::seconds(3723).to_string(), "1:02:03.000");
  EXPECT_EQ(SimTime::milliseconds(45).to_string(), "0:00:00.045");
  EXPECT_EQ((SimTime::zero() - SimTime::seconds(1)).to_string(),
            "-0:00:01.000");
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, ChildStreamsDiffer) {
  Rng a = Rng::child(42, 0);
  Rng b = Rng::child(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const std::int64_t v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ParetoSupportAndMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  const double alpha = 2.5;
  const double xm = 1.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(alpha, xm);
    ASSERT_GE(x, xm);
    sum += x;
  }
  // Pareto mean = alpha*xm/(alpha-1) = 5/3.
  EXPECT_NEAR(sum / n, alpha / (alpha - 1.0), 0.08);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(1.2, 2.0, 50.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(RngTest, InvalidParametersThrow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.pareto(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.bounded_pareto(1.0, 5.0, 2.0),
               std::invalid_argument);
}

// --- strings ----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.05, 3), "1.05");
  EXPECT_EQ(format_double(2.0, 4), "2");
  EXPECT_EQ(format_double(0.35, 2), "0.35");
  EXPECT_EQ(format_double(-0.0, 2), "0");
}

TEST(StringsTest, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(14000), "14,000");
  EXPECT_EQ(format_count(300000), "300,000");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
}

TEST(StringsTest, Strprintf) {
  EXPECT_EQ(strprintf("fi=%d prob=%.2f", 45, 0.8), "fi=45 prob=0.80");
  EXPECT_EQ(strprintf("%s", ""), "");
}

// --- Config ----------------------------------------------------------------

TEST(ConfigTest, ParsesTextWithCommentsAndBlanks) {
  const Config cfg = Config::from_text(
      "a = 1\n# comment\n\nrate=0.35  # inline\nname = syn-dog\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 0.35);
  EXPECT_EQ(cfg.get_string("name", ""), "syn-dog");
  EXPECT_EQ(cfg.size(), 3u);
}

TEST(ConfigTest, FromArgs) {
  const char* argv[] = {"trials=25", "site=unc"};
  const Config cfg = Config::from_args(2, argv);
  EXPECT_EQ(cfg.get_int("trials", 0), 25);
  EXPECT_EQ(cfg.get_string("site", ""), "unc");
}

TEST(ConfigTest, FallbacksAndErrors) {
  const Config cfg = Config::from_text("x=notanint\nflag=yes\n");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_THROW((void)cfg.get_int("x", 0), std::invalid_argument);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_THROW((void)Config::from_text("justakey\n"), std::invalid_argument);
}

TEST(ConfigTest, MergeOverrides) {
  Config base = Config::from_text("a=1\nb=2\n");
  base.merge(Config::from_text("b=3\nc=4\n"));
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(ConfigTest, EnvVarReadsProcessEnvironment) {
  ::setenv("SYNDOG_UTIL_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_var("SYNDOG_UTIL_TEST_VAR"),
            std::optional<std::string>("hello"));
  ::unsetenv("SYNDOG_UTIL_TEST_VAR");
  EXPECT_FALSE(env_var("SYNDOG_UTIL_TEST_VAR").has_value());
}

// --- Logging ---------------------------------------------------------------

TEST(LoggingTest, ParsesLevelNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("DeBuG"), LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(LoggingTest, SetLogLevelWinsOverEnvironment) {
  // SYNDOG_LOG is only consulted on the very first threshold read, so an
  // explicit set must stick even with the env var present.
  ::setenv("SYNDOG_LOG", "debug", 1);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kWarn);  // restore the suite default
  ::unsetenv("SYNDOG_LOG");
}

// --- TextTable / CsvWriter ----------------------------------------------------

TEST(TableTest, RendersAlignedTable) {
  TextTable t({"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| col    | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(SortedTest, ItemsAreKeyOrdered) {
  std::unordered_map<int, std::string> umap{{3, "c"}, {1, "a"}, {2, "b"}};
  const auto view = sorted_items(umap);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0]->first, 1);
  EXPECT_EQ(view[1]->first, 2);
  EXPECT_EQ(view[2]->first, 3);
  EXPECT_EQ(view[0]->second, "a");
}

TEST(SortedTest, MutableItemsWriteThrough) {
  std::unordered_map<int, int> umap{{2, 0}, {1, 0}};
  for (auto* entry : sorted_items(umap)) entry->second = entry->first * 10;
  EXPECT_EQ(umap[1], 10);
  EXPECT_EQ(umap[2], 20);
}

TEST(SortedTest, CustomComparatorReverses) {
  std::unordered_map<int, int> umap{{1, 0}, {3, 0}, {2, 0}};
  const auto view = sorted_items(umap, std::greater<int>{});
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0]->first, 3);
  EXPECT_EQ(view[2]->first, 1);
}

TEST(SortedTest, KeysFromSetAreSorted) {
  std::unordered_set<std::string> uset{"delta", "alpha", "charlie"};
  const auto keys = sorted_keys(uset);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys.front(), "alpha");
  EXPECT_EQ(keys.back(), "delta");
}

TEST(SortedTest, EmptyContainersGiveEmptyViews) {
  std::unordered_map<int, int> umap;
  std::unordered_set<int> uset;
  EXPECT_TRUE(sorted_items(umap).empty());
  EXPECT_TRUE(sorted_keys(uset).empty());
}

TEST(TableTest, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTest, EscapesSpecials) {
  CsvWriter csv({"name", "note"});
  csv.add_row({"plain", "has,comma"});
  csv.add_row({"q\"uote", "line\nbreak"});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"q\"\"uote\""), std::string::npos);
}

TEST(AsciiChartTest, RendersSeriesAndThreshold) {
  AsciiChartOptions opts;
  opts.width = 40;
  opts.height = 8;
  AsciiChart chart(opts);
  chart.add_series("up", {0, 1, 2, 3, 4, 5});
  chart.add_threshold("N", 4.0);
  const std::string out = chart.to_string();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find("N (4)"), std::string::npos);
}

}  // namespace
}  // namespace syndog::util
