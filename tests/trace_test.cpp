#include <gtest/gtest.h>

#include <algorithm>

#include "syndog/stats/online.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/trace/arrivals.hpp"
#include "syndog/trace/handshake.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"

namespace syndog::trace {
namespace {

// --- arrival models -------------------------------------------------------------

class ArrivalModelRateTest
    : public ::testing::TestWithParam<ArrivalKind> {};

TEST_P(ArrivalModelRateTest, LongRunRateMatchesMeanRate) {
  const auto model = make_arrival_model(GetParam(), 20.0, 40);
  util::Rng rng(11);
  const util::SimTime duration = util::SimTime::minutes(60);
  const auto times = model->generate(duration, rng);
  const double measured =
      static_cast<double>(times.size()) / duration.to_seconds();
  EXPECT_NEAR(measured, model->mean_rate(), model->mean_rate() * 0.2)
      << to_string(GetParam());
  EXPECT_NEAR(model->mean_rate(), 20.0, 0.5) << to_string(GetParam());
}

TEST_P(ArrivalModelRateTest, TimesAreSortedAndInRange) {
  const auto model = make_arrival_model(GetParam(), 5.0, 10);
  util::Rng rng(13);
  const util::SimTime duration = util::SimTime::minutes(10);
  const auto times = model->generate(duration, rng);
  ASSERT_FALSE(times.empty());
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GE(times.front(), util::SimTime::zero());
  EXPECT_LT(times.back(), duration);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ArrivalModelRateTest,
                         ::testing::Values(ArrivalKind::kPoisson,
                                           ArrivalKind::kMmpp,
                                           ArrivalKind::kParetoOnOff,
                                           ArrivalKind::kWeibull),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) ==
                                          "pareto-onoff"
                                      ? "pareto_onoff"
                                      : std::string(to_string(info.param));
                         });

TEST(ArrivalsTest, ParetoOnOffIsBurstierThanPoisson) {
  // Coefficient of variation of per-period counts: the self-similar
  // construction must exceed Poisson's.
  const util::SimTime duration = util::SimTime::minutes(60);
  const util::SimTime period = util::SimTime::seconds(20);
  const auto cv_of = [&](ArrivalKind kind, int sources) {
    const auto model = make_arrival_model(kind, 20.0, sources);
    util::Rng rng(17);
    const auto counts = bucket_times(model->generate(duration, rng), period,
                                     static_cast<std::size_t>(duration /
                                                              period));
    stats::OnlineStats s;
    for (auto c : counts) s.add(static_cast<double>(c));
    return s.cv();
  };
  EXPECT_GT(cv_of(ArrivalKind::kParetoOnOff, 10),
            1.5 * cv_of(ArrivalKind::kPoisson, 10));
}

TEST(ArrivalsTest, DiurnalModulationThinsToExpectedRate) {
  auto inner = std::make_shared<PoissonArrivals>(30.0);
  DiurnalModulation model(inner, 0.5, util::SimTime::hours(1));
  util::Rng rng(19);
  const util::SimTime duration = util::SimTime::hours(2);
  const auto times = model.generate(duration, rng);
  const double measured =
      static_cast<double>(times.size()) / duration.to_seconds();
  EXPECT_NEAR(measured, 20.0, 2.0);  // 30/(1+0.5)
}

TEST(ArrivalsTest, ParameterValidation) {
  EXPECT_THROW(PoissonArrivals{0.0}, std::invalid_argument);
  EXPECT_THROW(MmppArrivals(1.0, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(WeibullRenewalArrivals(1.0, 0.0), std::invalid_argument);
  ParetoOnOffArrivals::Params p;
  p.pareto_shape = 1.0;  // infinite mean
  EXPECT_THROW(ParetoOnOffArrivals{p}, std::invalid_argument);
  EXPECT_THROW(DiurnalModulation(nullptr, 0.5, util::SimTime::hours(1)),
               std::invalid_argument);
}

// --- handshake model ------------------------------------------------------------

TEST(HandshakeTest, LossFreeHandshakesAllAnswerWithinRtt) {
  PoissonArrivals arrivals(10.0);
  HandshakeParams params;
  params.no_answer_probability = 0.0;
  util::Rng rng(23);
  const ConnectionTrace trace = generate_trace(
      arrivals, util::SimTime::minutes(5), params, Direction::kOutbound,
      rng);
  ASSERT_GT(trace.attempts(), 0u);
  EXPECT_EQ(trace.total_syns(), trace.attempts());
  EXPECT_EQ(trace.total_syn_acks(), trace.attempts());
  for (const Handshake& hs : trace.handshakes) {
    ASSERT_EQ(hs.syn_times.size(), 1u);
    ASSERT_TRUE(hs.answered());
    const double rtt =
        (*hs.syn_ack_time - hs.syn_times[0]).to_seconds();
    EXPECT_GT(rtt, 0.0);
    EXPECT_LT(rtt, 2.0);  // lognormal around 120 ms
  }
}

TEST(HandshakeTest, RetransmissionsFollowExponentialBackoff) {
  PoissonArrivals arrivals(50.0);
  HandshakeParams params;
  params.no_answer_probability = 0.5;  // force plenty of retransmissions
  util::Rng rng(29);
  const ConnectionTrace trace = generate_trace(
      arrivals, util::SimTime::minutes(2), params, Direction::kOutbound,
      rng);
  bool saw_three = false;
  for (const Handshake& hs : trace.handshakes) {
    ASSERT_LE(hs.syn_times.size(), 3u);  // initial + 2 retx
    if (hs.syn_times.size() == 3) {
      saw_three = true;
      EXPECT_NEAR((hs.syn_times[1] - hs.syn_times[0]).to_seconds(), 3.0,
                  1e-9);
      EXPECT_NEAR((hs.syn_times[2] - hs.syn_times[1]).to_seconds(), 6.0,
                  1e-9);
    }
  }
  EXPECT_TRUE(saw_three);
}

TEST(HandshakeTest, CalibrationFormulas) {
  // Closed forms used to calibrate the sites (DESIGN.md §5).
  EXPECT_DOUBLE_EQ(expected_syns_per_attempt(0.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(expected_syns_per_attempt(0.5, 2), 1.75);
  EXPECT_DOUBLE_EQ(answer_probability(0.5, 2), 1.0 - 0.125);
  EXPECT_NEAR(normalized_difference_mean(0.047, 2), 0.0494, 5e-4);
}

TEST(HandshakeTest, MeasuredStatisticsMatchClosedForms) {
  PoissonArrivals arrivals(100.0);
  HandshakeParams params;
  params.no_answer_probability = 0.1;
  util::Rng rng(31);
  const ConnectionTrace trace = generate_trace(
      arrivals, util::SimTime::minutes(30), params, Direction::kOutbound,
      rng);
  const double syns_per_attempt =
      static_cast<double>(trace.total_syns()) /
      static_cast<double>(trace.attempts());
  const double answered = static_cast<double>(trace.total_syn_acks()) /
                          static_cast<double>(trace.attempts());
  EXPECT_NEAR(syns_per_attempt, expected_syns_per_attempt(0.1, 2), 0.01);
  EXPECT_NEAR(answered, answer_probability(0.1, 2), 0.01);
}

TEST(HandshakeTest, MergePreservesOrderAndCounts) {
  PoissonArrivals arrivals(5.0);
  HandshakeParams params;
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  ConnectionTrace a = generate_trace(arrivals, util::SimTime::minutes(5),
                                     params, Direction::kOutbound, rng_a);
  ConnectionTrace b = generate_trace(arrivals, util::SimTime::minutes(5),
                                     params, Direction::kInbound, rng_b);
  const std::size_t total = a.attempts() + b.attempts();
  const ConnectionTrace merged = merge_traces(std::move(a), std::move(b));
  EXPECT_EQ(merged.attempts(), total);
  EXPECT_TRUE(std::is_sorted(
      merged.handshakes.begin(), merged.handshakes.end(),
      [](const Handshake& x, const Handshake& y) {
        return x.first_syn() < y.first_syn();
      }));
}

TEST(HandshakeTest, MergeRejectsDurationMismatch) {
  ConnectionTrace a;
  a.duration = util::SimTime::minutes(5);
  ConnectionTrace b;
  b.duration = util::SimTime::minutes(6);
  EXPECT_THROW((void)merge_traces(std::move(a), std::move(b)),
               std::invalid_argument);
}

// --- LossProcess ------------------------------------------------------------------

TEST(LossProcessTest, WindowsElevateProbability) {
  LossProcess loss(0.05);
  loss.add_window(util::SimTime::seconds(10), util::SimTime::seconds(5),
                  0.6);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(9)), 0.05);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(10)), 0.6);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(14)), 0.6);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(15)), 0.05);
}

TEST(LossProcessTest, OverlappingWindowsTakeMax) {
  LossProcess loss(0.0);
  loss.add_window(util::SimTime::seconds(0), util::SimTime::seconds(10),
                  0.3);
  loss.add_window(util::SimTime::seconds(5), util::SimTime::seconds(10),
                  0.7);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(7)), 0.7);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(2)), 0.3);
  EXPECT_DOUBLE_EQ(loss.at(util::SimTime::seconds(12)), 0.7);
}

TEST(LossProcessTest, RandomDisruptionsRespectCap) {
  util::Rng rng(37);
  const LossProcess loss = LossProcess::with_random_disruptions(
      0.02, util::SimTime::hours(10), 6.0, 30.0, 0.5, rng, 40.0);
  EXPECT_GT(loss.window_count(), 10u);
  // The cap bounds each window: no 60-second stretch can be fully
  // elevated.
  int consecutive = 0;
  for (int s = 0; s < 36000; ++s) {
    if (loss.at(util::SimTime::seconds(s)) > 0.4) {
      ++consecutive;
      ASSERT_LE(consecutive, 41);
    } else {
      consecutive = 0;
    }
  }
}

// --- periods ---------------------------------------------------------------------

TEST(PeriodsTest, CountsConserveTraceTotals) {
  const SiteSpec spec = site_spec(SiteId::kHarvard);
  const ConnectionTrace trace = generate_site_trace(spec, 7);
  const PeriodSeries ps = extract_periods(trace, kObservationPeriod);
  EXPECT_EQ(ps.size(), 90u);  // 30 min / 20 s

  std::int64_t syn_total = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    syn_total += ps.out_syn[i] + ps.in_syn[i];
  }
  // Retransmissions can fall past the capture end; totals match within
  // that clipping.
  EXPECT_LE(syn_total, static_cast<std::int64_t>(trace.total_syns()));
  EXPECT_GT(syn_total, static_cast<std::int64_t>(trace.total_syns() * 0.99));
}

TEST(PeriodsTest, DirectionsLandInTheRightCounters) {
  ConnectionTrace trace;
  trace.duration = util::SimTime::seconds(60);
  Handshake out;
  out.direction = Direction::kOutbound;
  out.syn_times = {util::SimTime::seconds(5)};
  out.syn_ack_time = util::SimTime::seconds(25);
  Handshake in;
  in.direction = Direction::kInbound;
  in.syn_times = {util::SimTime::seconds(45)};
  in.syn_ack_time = util::SimTime::seconds(45) +
                    util::SimTime::milliseconds(50);
  trace.handshakes = {out, in};

  const PeriodSeries ps = extract_periods(trace, util::SimTime::seconds(20));
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.out_syn[0], 1);
  EXPECT_EQ(ps.in_syn_ack[1], 1);  // answered in the next period
  EXPECT_EQ(ps.in_syn[2], 1);
  EXPECT_EQ(ps.out_syn_ack[2], 1);
  EXPECT_EQ(ps.syn_both_directions()[0], 1);
  EXPECT_EQ(ps.syn_ack_both_directions()[2], 1);
}

TEST(PeriodsTest, EventsOutsideCaptureAreDropped) {
  ConnectionTrace trace;
  trace.duration = util::SimTime::seconds(40);
  Handshake late;
  late.direction = Direction::kOutbound;
  late.syn_times = {util::SimTime::seconds(39)};
  late.syn_ack_time = util::SimTime::seconds(41);  // after capture end
  trace.handshakes = {late};
  const PeriodSeries ps = extract_periods(trace, util::SimTime::seconds(20));
  EXPECT_EQ(ps.out_syn[1], 1);
  EXPECT_EQ(ps.in_syn_ack[0] + ps.in_syn_ack[1], 0);
}

TEST(PeriodsTest, AddOutboundSynsValidatesSize) {
  PeriodSeries ps;
  ps.out_syn = {1, 2, 3};
  EXPECT_THROW(ps.add_outbound_syns({1, 2}), std::invalid_argument);
}

TEST(PeriodsTest, BucketTimesClipsAndCounts) {
  const std::vector<util::SimTime> times = {
      util::SimTime::seconds(1), util::SimTime::seconds(19),
      util::SimTime::seconds(20), util::SimTime::seconds(999)};
  const auto counts = bucket_times(times, util::SimTime::seconds(20), 2);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);  // 999 s clipped
}

// --- site presets -----------------------------------------------------------------

class SiteCalibrationTest : public ::testing::TestWithParam<SiteId> {};

TEST_P(SiteCalibrationTest, MatchesCalibrationTargets) {
  const SiteSpec spec = site_spec(GetParam());
  const ConnectionTrace trace = generate_site_trace(spec, 42);
  const PeriodSeries ps = extract_periods(trace, kObservationPeriod);

  stats::OnlineStats k;
  double delta = 0;
  double acks = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    k.add(static_cast<double>(ps.in_syn_ack[i]));
    delta += static_cast<double>(ps.out_syn[i] - ps.in_syn_ack[i]);
    acks += static_cast<double>(ps.in_syn_ack[i]);
  }
  EXPECT_NEAR(k.mean(), spec.expected_syn_ack_per_period,
              spec.expected_syn_ack_per_period * 0.12);
  EXPECT_NEAR(delta / acks, spec.expected_c, 0.02);
}

TEST_P(SiteCalibrationTest, DeterministicInSeed) {
  const SiteSpec spec = site_spec(GetParam());
  const ConnectionTrace a = generate_site_trace(spec, 5);
  const ConnectionTrace b = generate_site_trace(spec, 5);
  ASSERT_EQ(a.attempts(), b.attempts());
  EXPECT_EQ(a.total_syns(), b.total_syns());
  EXPECT_EQ(a.total_syn_acks(), b.total_syn_acks());
  const ConnectionTrace c = generate_site_trace(spec, 6);
  EXPECT_NE(a.total_syns(), c.total_syns());
}

INSTANTIATE_TEST_SUITE_P(AllSites, SiteCalibrationTest,
                         ::testing::Values(SiteId::kLbl, SiteId::kHarvard,
                                           SiteId::kUnc,
                                           SiteId::kAuckland),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SiteTest, SynAndSynAckStronglyCorrelated) {
  // The core empirical observation of paper §4.1.
  for (const SiteId id :
       {SiteId::kHarvard, SiteId::kUnc, SiteId::kAuckland}) {
    const SiteSpec spec = site_spec(id);
    const ConnectionTrace trace = generate_site_trace(spec, 21);
    const PeriodSeries ps = extract_periods(trace, kObservationPeriod);
    const double corr = stats::pearson_correlation(
        PeriodSeries::to_double(ps.out_syn),
        PeriodSeries::to_double(ps.in_syn_ack));
    EXPECT_GT(corr, 0.9) << to_string(id);
  }
}

// --- rendering -------------------------------------------------------------------

TEST(RenderTest, PacketsMatchTraceEvents) {
  SiteSpec spec = site_spec(SiteId::kLbl);
  spec.inbound_rate = 0.0;  // outbound only, for exact accounting
  const ConnectionTrace trace = generate_site_trace(spec, 3);
  RenderConfig cfg;
  cfg.emit_final_ack = false;
  const std::vector<TimedPacket> packets = render_trace(trace, cfg);

  std::size_t syns = 0;
  std::size_t syn_acks = 0;
  for (const TimedPacket& tp : packets) {
    if (tp.packet.is_syn()) {
      ++syns;
      EXPECT_TRUE(cfg.stub_prefix.contains(tp.packet.ip.src));
      EXPECT_FALSE(cfg.stub_prefix.contains(tp.packet.ip.dst));
      EXPECT_EQ(tp.packet.eth.dst, cfg.router_mac);
    } else if (tp.packet.is_syn_ack()) {
      ++syn_acks;
      EXPECT_TRUE(cfg.stub_prefix.contains(tp.packet.ip.dst));
    }
  }
  EXPECT_EQ(syns, trace.total_syns());
  EXPECT_EQ(syn_acks, trace.total_syn_acks());
  EXPECT_TRUE(std::is_sorted(packets.begin(), packets.end(),
                             [](const TimedPacket& a, const TimedPacket& b) {
                               return a.at < b.at;
                             }));
}

TEST(RenderTest, FinalAckCompletesHandshake) {
  SiteSpec spec = site_spec(SiteId::kLbl);
  spec.inbound_rate = 0.0;
  const ConnectionTrace trace = generate_site_trace(spec, 3);
  RenderConfig cfg;
  const std::vector<TimedPacket> packets = render_trace(trace, cfg);
  std::size_t acks = 0;
  for (const TimedPacket& tp : packets) {
    if (tp.packet.tcp && tp.packet.tcp->flags == net::TcpFlags::ack_only()) {
      ++acks;
    }
  }
  EXPECT_EQ(acks, trace.total_syn_acks());
}

TEST(RenderTest, AttackPacketsAreSpoofedPureSyns) {
  AttackRenderConfig cfg;
  cfg.attacker_hosts = {7, 9};
  const std::vector<util::SimTime> times = {
      util::SimTime::seconds(1), util::SimTime::seconds(2),
      util::SimTime::seconds(3)};
  const std::vector<TimedPacket> packets = render_attack(times, cfg);
  ASSERT_EQ(packets.size(), 3u);
  for (const TimedPacket& tp : packets) {
    EXPECT_TRUE(tp.packet.is_syn());
    EXPECT_TRUE(cfg.spoof_pool.contains(tp.packet.ip.src));
    EXPECT_EQ(tp.packet.ip.dst, cfg.victim);
    const bool from_attacker =
        tp.packet.eth.src == net::MacAddress::for_host(7) ||
        tp.packet.eth.src == net::MacAddress::for_host(9);
    EXPECT_TRUE(from_attacker);
  }
}

TEST(RenderTest, MergeInterleavesByTime) {
  AttackRenderConfig cfg;
  auto a = render_attack({util::SimTime::seconds(1),
                          util::SimTime::seconds(5)}, cfg);
  auto b = render_attack({util::SimTime::seconds(3)}, cfg);
  const auto merged = merge_packets(std::move(a), std::move(b));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[1].at, util::SimTime::seconds(3));
}

}  // namespace
}  // namespace syndog::trace
