#include <gtest/gtest.h>

#include "syndog/net/address.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/net/wire.hpp"

namespace syndog::net {
namespace {

// --- addresses --------------------------------------------------------------

TEST(MacAddressTest, ParseAndFormatRoundTrip) {
  const auto mac = MacAddress::parse("02:00:00:00:00:2a");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:00:00:00:2a");
  EXPECT_EQ(*mac, MacAddress::for_host(42));
}

TEST(MacAddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02-00-00-00-00-2a").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:00:00:00:00:2a").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00:2a:ff").has_value());
}

TEST(MacAddressTest, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::for_host(1).is_broadcast());
}

TEST(Ipv4AddressTest, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x0a010203u);
  EXPECT_EQ(addr->to_string(), "10.1.2.3");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  for (const char* bad : {"", "10.1.2", "10.1.2.3.4", "10.1.2.256",
                          "10..2.3", "10.1.2.3.", "a.b.c.d", " 10.1.2.3"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(Ipv4PrefixTest, ContainsAndCanonicalization) {
  const auto p = Ipv4Prefix::parse("10.1.77.88/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->base().to_string(), "10.1.0.0");  // host bits cleared
  EXPECT_TRUE(p->contains(*Ipv4Address::parse("10.1.255.255")));
  EXPECT_FALSE(p->contains(*Ipv4Address::parse("10.2.0.0")));
  EXPECT_EQ(p->size(), 65536u);
  EXPECT_EQ(p->host(258).to_string(), "10.1.1.2");
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
}

TEST(Ipv4PrefixTest, EdgeLengths) {
  const Ipv4Prefix all(*Ipv4Address::parse("1.2.3.4"), 0);
  EXPECT_TRUE(all.contains(*Ipv4Address::parse("255.0.0.1")));
  const Ipv4Prefix host(*Ipv4Address::parse("1.2.3.4"), 32);
  EXPECT_TRUE(host.contains(*Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(*Ipv4Address::parse("1.2.3.5")));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
}

// --- checksums --------------------------------------------------------------

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5,
                               0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0xffff - 0xddf2 + 1 - 1);  // 0x220d
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(ChecksumTest, OddLengthPads) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  // sum = 0x1234 + 0x5600 = 0x6834 -> ~ = 0x97cb
  EXPECT_EQ(internet_checksum(data), 0x97cb);
}

TEST(ChecksumTest, WrittenIpv4HeaderVerifies) {
  Ipv4Header ip;
  ip.total_length = 40;
  ip.src = Ipv4Address(10, 0, 0, 1);
  ip.dst = Ipv4Address(10, 0, 0, 2);
  ByteBuffer out;
  write_ipv4(out, ip);
  EXPECT_TRUE(verify_ipv4_checksum(out));
  out[8] ^= 0xff;  // corrupt TTL
  EXPECT_FALSE(verify_ipv4_checksum(out));
}

// --- header round trips ------------------------------------------------------

TEST(WireTest, TcpHeaderRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 12345;
  tcp.dst_port = 80;
  tcp.seq = 0xdeadbeef;
  tcp.ack = 0x01020304;
  tcp.flags = TcpFlags::syn_ack();
  tcp.window = 4096;
  tcp.checksum = 0xabcd;
  tcp.urgent_pointer = 7;
  ByteBuffer out;
  write_tcp(out, tcp);
  const auto parsed = parse_tcp(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, tcp.src_port);
  EXPECT_EQ(parsed->dst_port, tcp.dst_port);
  EXPECT_EQ(parsed->seq, tcp.seq);
  EXPECT_EQ(parsed->ack, tcp.ack);
  EXPECT_EQ(parsed->flags, tcp.flags);
  EXPECT_EQ(parsed->window, tcp.window);
  EXPECT_EQ(parsed->checksum, tcp.checksum);
  EXPECT_EQ(parsed->urgent_pointer, tcp.urgent_pointer);
}

TEST(WireTest, ParseTcpRejectsTruncation) {
  TcpHeader tcp;
  ByteBuffer out;
  write_tcp(out, tcp);
  for (std::size_t len = 0; len < TcpHeader::kMinSize; ++len) {
    EXPECT_FALSE(parse_tcp(ByteSpan{out.data(), len}).has_value());
  }
}

TEST(WireTest, ParseIpv4RejectsBadVersionAndLengths) {
  Ipv4Header ip;
  ip.total_length = 20;
  ByteBuffer out;
  write_ipv4(out, ip);
  ByteBuffer v6 = out;
  v6[0] = (6 << 4) | 5;
  EXPECT_FALSE(parse_ipv4(v6).has_value());
  ByteBuffer short_ihl = out;
  short_ihl[0] = (4 << 4) | 4;  // IHL < 5
  EXPECT_FALSE(parse_ipv4(short_ihl).has_value());
  ByteBuffer bad_total = out;
  bad_total[2] = 0;
  bad_total[3] = 10;  // total_length < header
  EXPECT_FALSE(parse_ipv4(bad_total).has_value());
}

TEST(TcpFlagsTest, NamedSetsAndToString) {
  EXPECT_TRUE(TcpFlags::syn_only().syn());
  EXPECT_FALSE(TcpFlags::syn_only().ack());
  EXPECT_TRUE(TcpFlags::syn_ack().syn());
  EXPECT_TRUE(TcpFlags::syn_ack().ack());
  EXPECT_EQ(TcpFlags::syn_ack().to_string(), "SYN|ACK");
  EXPECT_EQ(TcpFlags{}.to_string(), "none");
}

// --- whole frames --------------------------------------------------------------

TcpPacketSpec sample_spec() {
  TcpPacketSpec spec;
  spec.src_mac = MacAddress::for_host(3);
  spec.dst_mac = MacAddress::for_host(0xffffff);
  spec.src_ip = Ipv4Address(10, 1, 0, 3);
  spec.dst_ip = Ipv4Address(192, 0, 2, 1);
  spec.src_port = 40000;
  spec.dst_port = 443;
  spec.seq = 1000;
  return spec;
}

TEST(PacketTest, SynFactoryProducesPureSyn) {
  const Packet syn = make_syn(sample_spec());
  EXPECT_TRUE(syn.is_syn());
  EXPECT_FALSE(syn.is_syn_ack());
  EXPECT_EQ(syn.ip.total_length, 40);
  EXPECT_EQ(syn.frame_bytes(), 54u);
}

TEST(PacketTest, EncodeDecodeRoundTrip) {
  TcpPacketSpec spec = sample_spec();
  spec.payload_bytes = 100;
  spec.flags = TcpFlags{TcpFlags::kPsh | TcpFlags::kAck};
  const Packet pkt = make_tcp_packet(spec);
  const ByteBuffer wire = encode_frame(pkt);
  EXPECT_EQ(wire.size(), pkt.frame_bytes());

  const auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->eth.src, spec.src_mac);
  EXPECT_EQ(decoded->eth.dst, spec.dst_mac);
  EXPECT_EQ(decoded->ip.src, spec.src_ip);
  EXPECT_EQ(decoded->ip.dst, spec.dst_ip);
  ASSERT_TRUE(decoded->tcp.has_value());
  EXPECT_EQ(decoded->tcp->src_port, spec.src_port);
  EXPECT_EQ(decoded->tcp->flags, spec.flags);
  EXPECT_EQ(decoded->payload_bytes, 100u);
}

TEST(PacketTest, EncodedTcpChecksumValidates) {
  const Packet pkt = make_syn(sample_spec());
  const ByteBuffer wire = encode_frame(pkt);
  // Recompute the transport checksum over the TCP segment; a correct
  // checksum makes the folded sum zero.
  const ByteSpan segment{wire.data() + 14 + 20, wire.size() - 34};
  EXPECT_EQ(transport_checksum(pkt.ip.src, pkt.ip.dst, IpProtocol::kTcp,
                               segment),
            0x0000);
}

TEST(PacketTest, UdpRoundTrip) {
  const Packet udp = make_udp_packet(
      MacAddress::for_host(1), MacAddress::for_host(2),
      Ipv4Address(10, 1, 0, 1), Ipv4Address(10, 1, 0, 2), 5000, 53, 64);
  const ByteBuffer wire = encode_frame(udp);
  const auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->udp.has_value());
  EXPECT_EQ(decoded->udp->dst_port, 53);
  EXPECT_EQ(decoded->payload_bytes, 64u);
  EXPECT_FALSE(decoded->is_tcp());
}

TEST(PacketTest, DecodeRejectsNonIpv4AndTruncation) {
  const Packet pkt = make_syn(sample_spec());
  ByteBuffer wire = encode_frame(pkt);
  ByteBuffer arp = wire;
  arp[12] = 0x08;
  arp[13] = 0x06;  // EtherType ARP
  EXPECT_FALSE(decode_frame(arp).has_value());
  EXPECT_FALSE(decode_frame(ByteSpan{wire.data(), 10}).has_value());
  EXPECT_FALSE(decode_frame(ByteSpan{wire.data(), 30}).has_value());
}

TEST(PacketTest, FragmentedPacketKeepsNoTransportHeader) {
  Packet pkt = make_syn(sample_spec());
  pkt.ip.frag_flags_offset = 185;  // nonzero fragment offset
  const ByteBuffer wire = encode_frame(pkt);
  const auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->tcp.has_value());  // not first fragment
}

TEST(PacketTest, SummaryMentionsEndpointsAndFlags) {
  const std::string s = make_syn(sample_spec()).summary();
  EXPECT_NE(s.find("10.1.0.3:40000"), std::string::npos);
  EXPECT_NE(s.find("192.0.2.1:443"), std::string::npos);
  EXPECT_NE(s.find("SYN"), std::string::npos);
}

}  // namespace
}  // namespace syndog::net
