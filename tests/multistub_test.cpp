// Multi-stub Internet simulation: one cloud and one victim shared by
// several stub networks, each watched by its own SYN-dog agent — the
// paper's distributed DDoS setting in a single event loop.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "syndog/attack/campaign.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/sim/multistub.hpp"

namespace syndog {
namespace {

using util::SimTime;

TEST(MultiStubTest, PrefixesAndHostsAreDisjoint) {
  sim::MultiStubParams params;
  params.stub_count = 4;
  params.hosts_per_stub = 5;
  sim::MultiStubSim net(params);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(
          net.stub_prefix(a).contains(net.stub_prefix(b).base()));
    }
    EXPECT_TRUE(net.stub_prefix(a).contains(net.host(a, 1).ip()));
  }
  EXPECT_THROW((void)net.router(4), std::out_of_range);
  EXPECT_THROW((void)net.host(0, 6), std::out_of_range);
  EXPECT_THROW(
      (void)net.add_internet_host("bad", net.stub_prefix(2).host(1), {}),
      std::invalid_argument);
}

TEST(MultiStubTest, HostIndexIsOneBasedAndRangeChecked) {
  sim::MultiStubParams params;
  params.stub_count = 2;
  params.hosts_per_stub = 5;
  sim::MultiStubSim net(params);
  // Boundaries of the documented [1, hosts_per_stub] range.
  EXPECT_EQ(net.host(0, 1).ip(), net.stub_prefix(0).host(1));
  EXPECT_EQ(net.host(1, 5).ip(), net.stub_prefix(1).host(5));
  // Index 0 is the prefix base, never host 1 — it must throw, not alias.
  EXPECT_THROW((void)net.host(0, 0), std::out_of_range);
  EXPECT_THROW((void)net.host(0, 6), std::out_of_range);
  EXPECT_THROW((void)net.host(-1, 1), std::out_of_range);
  EXPECT_THROW((void)net.host(2, 1), std::out_of_range);
  try {
    (void)net.host(0, 0);
    FAIL() << "host(0, 0) must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("[1, 5]"), std::string::npos)
        << e.what();
  }
  try {
    (void)net.host(7, 1);
    FAIL() << "host(7, 1) must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("stub index 7"),
              std::string::npos)
        << e.what();
  }
}

TEST(MultiStubTest, CrossStubConnectionsComplete) {
  // A client in stub 0 connects to a server host in stub 2: traffic
  // crosses both leaf routers and the shared cloud.
  sim::MultiStubParams params;
  params.stub_count = 3;
  params.hosts_per_stub = 3;
  params.cloud.no_answer_probability = 0.0;
  sim::MultiStubSim net(params);
  net.host(2, 1).listen(80);

  std::uint64_t stub0_out = 0;
  std::uint64_t stub2_in = 0;
  net.router(0).add_outbound_tap(
      [&](SimTime, const net::Packet& pkt) { stub0_out += pkt.is_syn(); });
  net.router(2).add_inbound_tap(
      [&](SimTime, const net::Packet& pkt) { stub2_in += pkt.is_syn(); });

  net.scheduler().schedule_at(SimTime::seconds(1), [&] {
    net.host(0, 1).connect(net.host(2, 1).ip(), 80);
  });
  net.run_until(SimTime::seconds(30));

  EXPECT_EQ(net.host(0, 1).stats().established_as_client, 1u);
  EXPECT_EQ(net.host(2, 1).stats().established_as_server, 1u);
  EXPECT_EQ(stub0_out, 1u);
  EXPECT_EQ(stub2_in, 1u);
}

TEST(MultiStubTest, DistributedCampaignDetectedInEveryStubAndAtVictim) {
  // Three stubs each host one slave; the aggregate lands on a shared
  // victim. Every stub's first-mile agent must alarm with the correct
  // local MAC, and the victim's backlog must saturate.
  sim::MultiStubParams params;
  params.stub_count = 3;
  params.hosts_per_stub = 10;
  sim::MultiStubSim net(params);

  sim::TcpHostParams victim_params;
  victim_params.backlog = 256;
  sim::TcpHost& victim = net.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);

  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  for (int s = 0; s < 3; ++s) {
    agents.push_back(std::make_unique<core::SynDogAgent>(
        net.router(s), net.scheduler(),
        core::SynDogParams::paper_defaults()));
  }

  attack::CampaignSpec campaign;
  campaign.aggregate_rate = 150.0;  // 50 SYN/s per stub
  campaign.stub_networks = 3;
  campaign.start = SimTime::minutes(2);
  campaign.duration = SimTime::minutes(5);
  const attack::Campaign c(campaign, 55);

  util::Rng rng(66);
  for (int s = 0; s < 3; ++s) {
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < 8 * 60.0) {
      t += rng.exponential_mean(0.25);  // 4 conn/s background per stub
      starts.push_back(SimTime::from_seconds(t));
    }
    net.schedule_outbound_background(s, starts);
    const std::uint32_t slave =
        c.slaves_in_stub(s)[0].host_index % params.hosts_per_stub + 1;
    net.launch_flood(s, slave, c.flood_times_in_stub(s), victim.ip(), 80,
                     *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  net.run_until(SimTime::minutes(6));

  const std::int64_t onset =
      campaign.start / core::SynDogParams{}.observation_period;
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(agents[static_cast<std::size_t>(s)]->ever_alarmed())
        << "stub " << s;
    EXPECT_GE(agents[static_cast<std::size_t>(s)]->first_alarm_period(),
              onset);
    const auto suspects =
        agents[static_cast<std::size_t>(s)]->locator().suspects();
    ASSERT_FALSE(suspects.empty()) << "stub " << s;
    const std::uint32_t slave =
        c.slaves_in_stub(s)[0].host_index % params.hosts_per_stub + 1;
    EXPECT_EQ(suspects.front().mac,
              net::MacAddress::for_host(
                  static_cast<std::uint32_t>(s) * 0x10000 + slave))
        << "stub " << s;
  }
  EXPECT_TRUE(victim.backlog_full());
  EXPECT_GT(victim.stats().backlog_drops, 1000u);
  // Spoofed replies died in the core, not at any stub's downlink.
  EXPECT_GT(net.cloud().stats().dropped_unreachable, 1000u);
}

TEST(MultiStubTest, CleanStubsStayQuietWhileOneFloods) {
  // Only stub 1 hosts a slave: its agent alarms, the others don't.
  sim::MultiStubParams params;
  params.stub_count = 3;
  params.hosts_per_stub = 8;
  sim::MultiStubSim net(params);

  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  for (int s = 0; s < 3; ++s) {
    agents.push_back(std::make_unique<core::SynDogAgent>(
        net.router(s), net.scheduler(),
        core::SynDogParams::paper_defaults()));
  }
  util::Rng rng(77);
  for (int s = 0; s < 3; ++s) {
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < 6 * 60.0) {
      t += rng.exponential_mean(0.3);
      starts.push_back(SimTime::from_seconds(t));
    }
    net.schedule_outbound_background(s, starts);
  }
  attack::FloodSpec flood;
  flood.rate = 60.0;
  flood.start = SimTime::minutes(2);
  flood.duration = SimTime::minutes(3);
  util::Rng frng(78);
  net.launch_flood(1, 4, attack::generate_flood_times(flood, frng),
                   net::Ipv4Address(198, 51, 100, 10), 80,
                   *net::Ipv4Prefix::parse("240.0.0.0/8"));
  net.run_until(SimTime::minutes(6));

  EXPECT_FALSE(agents[0]->ever_alarmed());
  EXPECT_TRUE(agents[1]->ever_alarmed());
  EXPECT_FALSE(agents[2]->ever_alarmed());
}

}  // namespace
}  // namespace syndog
