#include <gtest/gtest.h>

#include <sstream>

#include "syndog/net/packet.hpp"
#include "syndog/pcap/pcapng.hpp"

namespace syndog::pcap {
namespace {

net::ByteBuffer sample_frame(std::uint32_t host) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(host);
  spec.dst_mac = net::MacAddress::for_host(0xffffff);
  spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = static_cast<std::uint16_t>(40000 + host);
  spec.dst_port = 80;
  return net::encode_frame(net::make_syn(spec));
}

TEST(PcapngTest, RoundTripWithNanosecondTimestamps) {
  std::stringstream buf;
  PcapngWriter writer(buf);
  const net::ByteBuffer f1 = sample_frame(1);
  const net::ByteBuffer f2 = sample_frame(2);
  writer.write(util::SimTime::nanoseconds(123456789), f1);
  writer.write(util::SimTime::seconds(5), f2);
  EXPECT_EQ(writer.records_written(), 2u);

  PcapngReader reader(buf);
  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->timestamp.ns(), 123456789);
  EXPECT_EQ(r1->data, f1);
  EXPECT_EQ(r1->orig_len, f1.size());
  EXPECT_EQ(reader.last_link_type(), LinkType::kEthernet);

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp, util::SimTime::seconds(5));

  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(PcapngTest, SnaplenTruncation) {
  std::stringstream buf;
  PcapngWriter writer(buf, LinkType::kEthernet, /*snaplen=*/32);
  const net::ByteBuffer frame = sample_frame(1);
  writer.write(util::SimTime::zero(), frame);
  PcapngReader reader(buf);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 32u);
  EXPECT_EQ(rec->orig_len, frame.size());
}

TEST(PcapngTest, SkipsUnknownBlocks) {
  std::stringstream buf;
  PcapngWriter writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  // Splice a custom block (type 0x0BAD, minimal 12+4 bytes) between
  // records; readers must skip it.
  std::string custom;
  const auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) custom.push_back(static_cast<char>(v >> (8 * i)));
  };
  le32(0x0bad);
  le32(16);
  le32(0xdeadbeef);
  le32(16);
  buf << custom;
  writer.write(util::SimTime::seconds(2), sample_frame(2));

  PcapngReader reader(buf);
  EXPECT_TRUE(reader.next().has_value());
  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->timestamp, util::SimTime::seconds(2));
}

TEST(PcapngTest, ReadsByteSwappedSections) {
  // Hand-build a big-endian section: SHB + IDB (microsecond default) +
  // one EPB.
  std::string raw;
  const auto be16 = [&](std::uint16_t v) {
    raw.push_back(static_cast<char>(v >> 8));
    raw.push_back(static_cast<char>(v));
  };
  const auto be32 = [&](std::uint32_t v) {
    for (int i = 3; i >= 0; --i) raw.push_back(static_cast<char>(v >> (8 * i)));
  };
  // SHB: type, len=28, magic, ver 1.0, section len -1, len.
  be32(0x0a0d0d0a);
  be32(28);
  be32(0x1a2b3c4d);
  be16(1);
  be16(0);
  be32(0xffffffff);
  be32(0xffffffff);
  be32(28);
  // IDB: type=1, len=20, linktype=1, reserved, snaplen, len.
  be32(1);
  be32(20);
  be16(1);
  be16(0);
  be32(65535);
  be32(20);
  // EPB: total = 12 framing + 20 header + 4 data = 36; ts=1.5s in us.
  const std::uint64_t ticks = 1'500'000;
  be32(6);
  be32(36);
  be32(0);
  be32(static_cast<std::uint32_t>(ticks >> 32));
  be32(static_cast<std::uint32_t>(ticks));
  be32(4);
  be32(4);
  raw += "\x01\x02\x03\x04";
  be32(36);

  std::stringstream buf(raw);
  PcapngReader reader(buf);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  // Default resolution without if_tsresol is microseconds.
  EXPECT_EQ(rec->timestamp, util::SimTime::from_seconds(1.5));
  ASSERT_EQ(rec->data.size(), 4u);
  EXPECT_EQ(rec->data[0], 0x01);
}

TEST(PcapngTest, TruncatedStreamsReportTruncation) {
  std::stringstream buf;
  PcapngWriter writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  const std::string full = buf.str();
  for (const std::size_t cut : {full.size() - 3, full.size() / 2}) {
    std::stringstream damaged(full.substr(0, cut));
    PcapngReader reader(damaged);
    while (reader.next().has_value()) {
    }
    EXPECT_TRUE(reader.truncated()) << "cut at " << cut;
  }
}

TEST(PcapngTest, RejectsGarbageMagic) {
  std::stringstream junk("this is not a capture file, honest");
  PcapngReader reader(junk);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST(PcapngTest, EndStateDistinguishesEofFromTruncation) {
  std::stringstream buf;
  PcapngWriter writer(buf);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  const std::string full = buf.str();
  {
    std::stringstream clean(full);
    PcapngReader reader(clean);
    EXPECT_EQ(reader.end_state(), ReadEnd::kStreaming);
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.end_state(), ReadEnd::kEof);
    // Terminal: repeated calls do not flip the state.
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.end_state(), ReadEnd::kEof);
  }
  {
    // Cut inside the 8-byte block header of the EPB.
    std::stringstream damaged(full.substr(0, full.size() -
                                                 sample_frame(1).size() -
                                                 20 - 12 + 5));
    PcapngReader reader(damaged);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.end_state(), ReadEnd::kTruncated);
  }
}

TEST(PcapngTest, NextIntoStreamsWithoutReallocation) {
  std::stringstream buf;
  PcapngWriter writer(buf);
  for (int i = 1; i <= 4; ++i) {
    writer.write(util::SimTime::seconds(i),
                 sample_frame(static_cast<std::uint32_t>(i)));
  }
  PcapngReader reader(buf);
  Record rec;
  ASSERT_TRUE(reader.next_into(rec));
  EXPECT_EQ(rec.data, sample_frame(1));
  const auto* before = rec.data.data();
  for (std::uint32_t i = 2; i <= 4; ++i) {
    ASSERT_TRUE(reader.next_into(rec));
    EXPECT_EQ(rec.data, sample_frame(i));
    EXPECT_EQ(rec.data.data(), before);  // equal-size records: no realloc
  }
  EXPECT_FALSE(reader.next_into(rec));
  EXPECT_EQ(reader.records_read(), 4u);
}

/// Swallows writes but fails on sync (buffered disk-full stand-in).
class UnsyncableBuf final : public std::streambuf {
 protected:
  int_type overflow(int_type ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
  int sync() override { return -1; }
};

TEST(PcapngTest, FlushSurfacesSyncFailure) {
  UnsyncableBuf unsyncable;
  std::ostream out(&unsyncable);
  PcapngWriter writer(out);
  writer.write(util::SimTime::seconds(1), sample_frame(1));
  EXPECT_THROW(writer.flush(), std::runtime_error);
}

TEST(ReadAnyCaptureTest, DispatchesOnMagic) {
  const net::ByteBuffer frame = sample_frame(3);
  {
    std::stringstream classic;
    Writer writer(classic);
    writer.write(util::SimTime::seconds(2), frame);
    const auto records = read_any_capture(classic);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].data, frame);
  }
  {
    std::stringstream modern;
    PcapngWriter writer(modern);
    writer.write(util::SimTime::seconds(2), frame);
    const auto records = read_any_capture(modern);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].data, frame);
    EXPECT_EQ(records[0].timestamp, util::SimTime::seconds(2));
  }
  std::stringstream junk("????????");
  EXPECT_THROW((void)read_any_capture(junk), std::runtime_error);
}

}  // namespace
}  // namespace syndog::pcap
