// Mitigation subsystem tests: policy validation, the token bucket's DES
// clock, the staged state machine end to end through the simulator
// (hysteresis under a flapping flood, exponential re-arm backoff, probe
// release and probe failure), the empty-policy byte-exact no-op, the
// degraded-evidence veto, and the victim-side SYN-cookie mode.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/fault/chaos.hpp"
#include "syndog/fault/schedule.hpp"
#include "syndog/mitigate/controller.hpp"
#include "syndog/mitigate/policy.hpp"
#include "syndog/mitigate/recorder.hpp"
#include "syndog/mitigate/token_bucket.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/sim/tcp_host.hpp"
#include "syndog/util/rng.hpp"

namespace syndog {
namespace {

using mitigate::EdgeReason;
using mitigate::MitigationController;
using mitigate::MitigationPolicy;
using mitigate::MitigationRecorder;
using mitigate::Stage;
using util::SimTime;

/// Poisson outbound background at `rate` conn/s for `minutes` minutes.
std::vector<SimTime> background_starts(double rate, int minutes,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < minutes * 60.0) {
    t += rng.exponential_mean(1.0 / rate);
    starts.push_back(SimTime::from_seconds(t));
  }
  return starts;
}

/// A small live site: 3 conn/s from 10 hosts, ~57 SYN/ACKs per period.
sim::StubNetworkParams small_site_params() {
  sim::StubNetworkParams params;
  params.num_hosts = 10;
  params.cloud.no_answer_probability = 0.05;
  params.seed = 21;
  return params;
}

/// Agent parameters for controller tests: the statistic cap bounds how
/// much alarm mass a flood banks, so release times are a function of the
/// decay rate, not the flood length (same setting as the bench).
core::SynDogParams capped_params() {
  core::SynDogParams params = core::SynDogParams::paper_defaults();
  params.statistic_cap = 2.0;
  return params;
}

/// Schedules a spoofed flood window [start_s, end_s) at 200 SYN/s from
/// stub host 4 toward an off-net victim.
void flood_window(sim::StubNetworkSim& network, double start_s,
                  double end_s, std::uint64_t seed) {
  attack::FloodSpec flood;
  flood.rate = 200.0;
  flood.start = SimTime::from_seconds(start_s);
  flood.duration = SimTime::from_seconds(end_s - start_s);
  util::Rng rng(seed);
  network.launch_flood(4, attack::generate_flood_times(flood, rng),
                       net::Ipv4Address(198, 51, 100, 7), 80,
                       *net::Ipv4Prefix::parse("203.0.113.0/24"));
}

// --- policy validation ------------------------------------------------------

TEST(MitigationPolicyTest, ValidateRejectsBadKnobs) {
  MitigationPolicy p = MitigationPolicy::staged_defaults();
  p.engage_after = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = MitigationPolicy::rate_limit_only();
  p.rate_limit_burst = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = MitigationPolicy::staged_defaults();
  p.release_fraction = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = MitigationPolicy::staged_defaults();
  p.backoff_max = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  EXPECT_FALSE(MitigationPolicy{}.enabled());
  EXPECT_NO_THROW(MitigationPolicy{}.validate());
  EXPECT_TRUE(MitigationPolicy::staged_defaults().enabled());
}

// --- token bucket -----------------------------------------------------------

TEST(TokenBucketTest, BurstThenRefillOnSimClock) {
  mitigate::TokenBucket bucket(1.0, 4.0, SimTime::zero());
  // The burst allowance drains packet by packet.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bucket.try_consume(SimTime::zero())) << i;
  }
  EXPECT_FALSE(bucket.try_consume(SimTime::zero()));
  // Half a token after 0.5 s is not enough; a full token is.
  EXPECT_FALSE(bucket.try_consume(SimTime::milliseconds(500)));
  EXPECT_TRUE(bucket.try_consume(SimTime::milliseconds(1500)));
  // Refill never exceeds the burst cap.
  EXPECT_TRUE(bucket.try_consume(SimTime::minutes(10)));
  EXPECT_EQ(bucket.tokens(), 3.0);
}

// --- hysteresis: a flapping flood cannot ping-pong the stage ----------------

TEST(MitigationStateMachineTest, FlappingFloodEngagesOnceReleasesOnce) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  MitigationController controller(agent, network.router(),
                                  MitigationPolicy::rate_limit_only());
  MitigationRecorder recorder(controller);
  network.schedule_outbound_background(background_starts(3.0, 10, 33));
  // Three 40 s bursts with 40 s gaps: the statistic never decays below
  // the release threshold (0.5 * N) inside a gap, so the no-alarm
  // periods there must not count toward release.
  flood_window(network, 120.0, 160.0, 41);
  flood_window(network, 200.0, 240.0, 42);
  flood_window(network, 280.0, 320.0, 43);
  network.run_until(SimTime::minutes(10));

  const auto& stats = controller.stats();
  EXPECT_EQ(stats.engagements, 1u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.full_releases, 1u);
  EXPECT_EQ(stats.escalations, 0u);
  EXPECT_EQ(stats.quarantine_entries, 0u);
  ASSERT_EQ(recorder.edges().size(), 2u);
  EXPECT_EQ(recorder.edges()[0].reason, EdgeReason::kEngage);
  EXPECT_EQ(recorder.edges()[1].reason, EdgeReason::kRelease);
  // Fully recovered by the end of the run, with the flood throttled in
  // between (tokens spent) and the release after the last burst.
  EXPECT_FALSE(recorder.mitigating());
  EXPECT_GT(stats.throttled_syns, 0u);
  EXPECT_GT(stats.dropped_attack_syns, 0u);
  ASSERT_TRUE(recorder.fully_released_at().has_value());
  EXPECT_GT(*recorder.fully_released_at(), SimTime::from_seconds(320.0));
}

// --- exponential re-arm backoff ---------------------------------------------

TEST(MitigationStateMachineTest, SecondReleaseWaitsThroughDoubledBackoff) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  MitigationController controller(agent, network.router(),
                                  MitigationPolicy::rate_limit_only());
  MitigationRecorder recorder(controller);
  network.schedule_outbound_background(background_starts(3.0, 14, 33));
  // Identical 40 s bursts; the second starts well after the first full
  // release and well before the backoff multiplier decays.
  flood_window(network, 120.0, 160.0, 41);
  flood_window(network, 400.0, 440.0, 42);
  network.run_until(SimTime::minutes(14));

  EXPECT_EQ(controller.stats().engagements, 2u);
  EXPECT_EQ(controller.stats().full_releases, 2u);
  std::vector<SimTime> releases;
  for (const MitigationController::StageEdge& e : recorder.edges()) {
    if (e.reason == EdgeReason::kRelease) releases.push_back(e.at);
  }
  ASSERT_EQ(releases.size(), 2u);
  // Both bursts bank the same capped statistic, so the decay back to
  // quiet takes the same time — the only difference is the doubled
  // quiet-streak requirement: release_after * 2 instead of release_after,
  // i.e. three extra observation periods (60 s), give or take the one
  // period the noisy quiet-threshold crossing can shift by.
  const double d1 = (releases[0] - SimTime::from_seconds(160.0)).to_seconds();
  const double d2 = (releases[1] - SimTime::from_seconds(440.0)).to_seconds();
  EXPECT_GE(d2 - d1, 40.0);
  EXPECT_LE(d2 - d1, 80.0);
}

// --- staged release: quarantine exits through a probe period ----------------

TEST(MitigationStateMachineTest, QuarantineReleasesThroughPassingProbe) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  MitigationController controller(agent, network.router(),
                                  MitigationPolicy::staged_defaults());
  MitigationRecorder recorder(controller);
  obs::Registry registry;
  controller.attach_observer(nullptr, registry);
  network.schedule_outbound_background(background_starts(3.0, 12, 33));
  // One long burst: alarm streak walks observe -> rate-limit ->
  // quarantine; after the flood the decay releases it into a probe.
  flood_window(network, 120.0, 220.0, 41);
  network.run_until(SimTime::minutes(12));

  const auto& edges = recorder.edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0].reason, EdgeReason::kEngage);
  EXPECT_EQ(edges[0].to, Stage::kRateLimit);
  EXPECT_EQ(edges[1].reason, EdgeReason::kEscalate);
  EXPECT_EQ(edges[1].to, Stage::kQuarantine);
  EXPECT_EQ(edges[2].reason, EdgeReason::kRelease);
  EXPECT_EQ(edges[2].to, Stage::kRateLimit);  // on probation
  EXPECT_EQ(edges[3].reason, EdgeReason::kProbePassed);
  EXPECT_EQ(edges[3].to, Stage::kObserve);

  // Engagement lands within two observation periods of the onset.
  ASSERT_TRUE(recorder.first_engaged_at().has_value());
  EXPECT_GE(*recorder.first_engaged_at(), SimTime::from_seconds(120.0));
  EXPECT_LE(*recorder.first_engaged_at(), SimTime::from_seconds(160.0));
  ASSERT_TRUE(recorder.first_quarantined_at().has_value());
  ASSERT_TRUE(recorder.fully_released_at().has_value());
  EXPECT_FALSE(recorder.mitigating());
  const SimTime end = SimTime::minutes(12);
  EXPECT_GT(recorder.seconds_in(Stage::kQuarantine, end), SimTime::zero());
  EXPECT_GT(recorder.seconds_in(Stage::kRateLimit, end), SimTime::zero());
  // The observer counters mirror the stats (created lazily on use).
  EXPECT_EQ(registry.counter("mitigate.engagements").value(), 1u);
  EXPECT_EQ(registry.counter("mitigate.escalations").value(), 1u);
  EXPECT_EQ(registry.counter("mitigate.releases").value(), 2u);
}

// --- probe failure: an alarm on probation re-quarantines --------------------

TEST(MitigationStateMachineTest, AlarmDuringProbationFailsTheProbe) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  MitigationPolicy policy = MitigationPolicy::staged_defaults();
  policy.escalate_after = 1;  // reach quarantine in two alarm periods
  policy.probe_periods = 6;   // 120 s probation window
  MitigationController controller(agent, network.router(), policy);
  MitigationRecorder recorder(controller);
  network.schedule_outbound_background(background_starts(3.0, 14, 33));
  // Burst A escalates into quarantine; after the decay the release puts
  // the source on probation, and burst B lands inside that window.
  flood_window(network, 120.0, 160.0, 41);
  flood_window(network, 380.0, 420.0, 42);
  network.run_until(SimTime::minutes(14));

  EXPECT_EQ(controller.stats().probe_failures, 1u);
  EXPECT_EQ(controller.stats().quarantine_entries, 2u);
  bool saw_probe_failure = false;
  for (const MitigationController::StageEdge& e : recorder.edges()) {
    if (e.reason == EdgeReason::kProbeFailed) {
      saw_probe_failure = true;
      EXPECT_EQ(e.from, Stage::kRateLimit);
      EXPECT_EQ(e.to, Stage::kQuarantine);
    }
  }
  EXPECT_TRUE(saw_probe_failure);
}

// --- empty policy is a strict no-op -----------------------------------------

struct NoopProbe {
  std::vector<core::PeriodReport> history;
  std::uint64_t uplink_delivered = 0;
  std::uint64_t downlink_delivered = 0;
  std::uint64_t dropped_policer = 0;
};

NoopProbe run_noop_scenario(bool with_empty_controller) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  std::optional<MitigationController> controller;
  std::optional<MitigationRecorder> recorder;
  if (with_empty_controller) {
    controller.emplace(agent, network.router(), MitigationPolicy{});
    recorder.emplace(*controller);
  }
  network.schedule_outbound_background(background_starts(3.0, 8, 33));
  flood_window(network, 120.0, 240.0, 41);
  network.run_until(SimTime::minutes(8));
  if (recorder) {
    EXPECT_TRUE(recorder->edges().empty());
    EXPECT_FALSE(recorder->mitigating());
  }
  NoopProbe r;
  r.history = agent.history();
  r.uplink_delivered = network.uplink().delivered();
  r.downlink_delivered = network.downlink().delivered();
  r.dropped_policer = network.router().stats().dropped_policer;
  return r;
}

TEST(MitigationControllerTest, EmptyPolicyChangesNothing) {
  const NoopProbe base = run_noop_scenario(false);
  const NoopProbe empty = run_noop_scenario(true);
  ASSERT_EQ(base.history.size(), empty.history.size());
  for (std::size_t i = 0; i < base.history.size(); ++i) {
    EXPECT_EQ(base.history[i].syn_count, empty.history[i].syn_count) << i;
    EXPECT_EQ(base.history[i].syn_ack_count,
              empty.history[i].syn_ack_count)
        << i;
    EXPECT_EQ(base.history[i].y, empty.history[i].y) << i;
  }
  EXPECT_EQ(base.uplink_delivered, empty.uplink_delivered);
  EXPECT_EQ(base.downlink_delivered, empty.downlink_delivered);
  EXPECT_EQ(base.dropped_policer, 0u);
  EXPECT_EQ(empty.dropped_policer, 0u);
}

// --- degraded evidence never engages ----------------------------------------

TEST(MitigationControllerTest, DegradedFalseAlarmIsVetoed) {
  sim::StubNetworkSim network(small_site_params());
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          capped_params());
  MitigationController controller(agent, network.router(),
                                  MitigationPolicy::staged_defaults());
  MitigationRecorder recorder(controller);
  // Dead return path for three minutes: every inbound SYN/ACK bypasses
  // the tap, the agent's counters collapse, and any alarm it still
  // raises is flagged degraded — the controller must veto them all.
  fault::FaultSchedule schedule;
  schedule.asymmetric_route(SimTime::from_seconds(120.0),
                            SimTime::from_seconds(300.0), 1.0);
  fault::ChaosController chaos(network, std::move(schedule), 7);
  network.schedule_outbound_background(background_starts(3.0, 10, 33));
  network.run_until(SimTime::minutes(10));

  EXPECT_EQ(controller.stats().engagements, 0u);
  EXPECT_EQ(controller.stats().quarantine_entries, 0u);
  EXPECT_GT(controller.stats().vetoed_alarm_periods, 0u);
  EXPECT_TRUE(recorder.edges().empty());
  EXPECT_EQ(network.router().stats().dropped_policer, 0u);
  EXPECT_EQ(controller.target_count(), 0u);
}

// --- victim-side SYN cookies ------------------------------------------------

TEST(TcpHostCookieTest, CookieModeEngagesServesLegitAndReverts) {
  sim::StubNetworkParams params;
  params.num_hosts = 3;
  sim::StubNetworkSim network(params);
  sim::TcpHostParams victim_params;
  victim_params.backlog = 64;
  victim_params.syn_cookies = true;
  sim::TcpHost& victim = network.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);
  obs::Registry registry;
  victim.attach_observer(registry);

  // Spoofed flood: 500 SYNs over 5 s wedge a classic backlog. With
  // cookies the high-water mark trips instead and the handshake goes
  // stateless.
  std::vector<SimTime> flood;
  for (int i = 0; i < 500; ++i) {
    flood.push_back(SimTime::milliseconds(10 * i));
  }
  network.launch_flood(2, flood, victim.ip(), 80,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));
  // Legit connections arriving mid-flood must still complete: the
  // stateless SYN/ACK carries a valid cookie and the final ACK mints the
  // connection without ever having held a backlog slot.
  for (int i = 0; i < 5; ++i) {
    network.scheduler().schedule_at(
        SimTime::from_seconds(6.0 + 0.5 * i), [&network, &victim] {
          network.host(1).connect(victim.ip(), 80);
        });
  }
  network.run_until(SimTime::seconds(20));

  EXPECT_TRUE(victim.cookie_mode_active());
  EXPECT_EQ(victim.stats().cookie_engagements, 1u);
  EXPECT_GT(victim.stats().syn_cookies_sent, 0u);
  EXPECT_GE(victim.stats().syn_cookies_validated, 5u);
  EXPECT_GE(victim.stats().established_as_server, 5u);
  // The spoofed half of the flood never ACKs, so nothing it sent was
  // validated; cookies also never rejected the legit clients.
  EXPECT_EQ(victim.stats().syn_cookies_rejected, 0u);

  // Once the pre-engagement half-open entries expire, the next SYN sees
  // the low-water mark and reverts to the classic handshake.
  network.scheduler().schedule_at(SimTime::seconds(150), [&network, &victim] {
    network.host(1).connect(victim.ip(), 80);
  });
  network.run_until(SimTime::seconds(160));
  EXPECT_FALSE(victim.cookie_mode_active());

  // The backlog_dropped counter mirrors stats (lazily created, so it
  // only exists because the wedge phase actually dropped).
  EXPECT_EQ(registry.counter("host.victim.backlog_dropped").value(),
            victim.stats().backlog_drops);
}

}  // namespace
}  // namespace syndog
