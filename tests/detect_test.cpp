#include <gtest/gtest.h>

#include <cmath>

#include "syndog/detect/charts.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/detect/evaluator.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::detect {
namespace {

// --- NonParametricCusum -------------------------------------------------------

TEST(NpCusumTest, MatchesPaperRecursionByHand) {
  // yn = (y(n-1) + Xn - a)^+ with a = 0.35.
  NonParametricCusum cusum({0.35, 1.05});
  EXPECT_DOUBLE_EQ(cusum.update(0.05).statistic, 0.0);   // negative -> 0
  EXPECT_DOUBLE_EQ(cusum.update(0.55).statistic, 0.2);   // +0.2
  EXPECT_DOUBLE_EQ(cusum.update(0.75).statistic, 0.6);   // +0.4
  const Decision d = cusum.update(1.00);                 // +0.65 -> 1.25
  EXPECT_DOUBLE_EQ(d.statistic, 1.25);
  EXPECT_TRUE(d.alarm);
}

TEST(NpCusumTest, StatisticNeverNegative) {
  NonParametricCusum cusum({0.35, 1.05});
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const Decision d = cusum.update(rng.uniform(-2.0, 0.3));
    EXPECT_GE(d.statistic, 0.0);
  }
}

TEST(NpCusumTest, ResetsToZeroFrequentlyUnderNormalInput) {
  // The paper: "the test statistic yn will be reset to zero frequently
  // and will not accumulate with time" when E[Xn] < a.
  NonParametricCusum cusum({0.35, 1.05});
  util::Rng rng(2);
  int zeros = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (cusum.update(rng.uniform(0.0, 0.2)).statistic == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, n * 9 / 10);
}

TEST(NpCusumTest, DetectsMeanShiftWithExpectedDelay) {
  // Drift h - a = 0.35 per step above the offset => ~3 steps to cross
  // N = 1.05 (the paper's designed detection time with h = 2a).
  NonParametricCusum cusum({0.35, 1.05});
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(cusum.update(0.05).alarm);
  }
  int steps = 0;
  while (!cusum.update(0.70).alarm) {
    ++steps;
    ASSERT_LT(steps, 10);
  }
  EXPECT_EQ(steps + 1, 4);  // 3 full steps put y at exactly 1.05; 4th crosses
}

TEST(NpCusumTest, ExpectedDelayFormula) {
  // Eq. (7): rho = N / (h - |c - a|).
  EXPECT_DOUBLE_EQ(
      NonParametricCusum::expected_delay_periods(1.05, 0.7, 0.0, 0.35),
      3.0);
  EXPECT_TRUE(std::isinf(
      NonParametricCusum::expected_delay_periods(1.05, 0.3, 0.0, 0.35)));
}

TEST(NpCusumTest, BoundedVariantCapsStatisticButNotDetection) {
  NonParametricCusum unbounded({0.35, 1.05, 0.0});
  NonParametricCusum bounded({0.35, 1.05, 3.0});
  // Same long flood: both alarm at the same step...
  int first_alarm_unbounded = -1;
  int first_alarm_bounded = -1;
  for (int i = 0; i < 50; ++i) {
    if (unbounded.update(1.0).alarm && first_alarm_unbounded < 0) {
      first_alarm_unbounded = i;
    }
    if (bounded.update(1.0).alarm && first_alarm_bounded < 0) {
      first_alarm_bounded = i;
    }
  }
  EXPECT_EQ(first_alarm_unbounded, first_alarm_bounded);
  EXPECT_GT(unbounded.statistic(), 30.0);
  EXPECT_DOUBLE_EQ(bounded.statistic(), 3.0);
  // ...but the bounded one de-alarms quickly after the flood ends.
  int recovery = 0;
  while (bounded.update(0.05).alarm) {
    ++recovery;
    ASSERT_LT(recovery, 20);
  }
  EXPECT_LE(recovery, 7);  // (3.0 - 1.05) / 0.3 periods
}

TEST(NpCusumTest, CapBelowThresholdRejected) {
  EXPECT_THROW(NonParametricCusum({0.35, 1.05, 0.5}),
               std::invalid_argument);
}

TEST(NpCusumTest, ResetRestoresInitialState) {
  NonParametricCusum cusum({0.35, 1.05});
  (void)cusum.update(5.0);
  EXPECT_GT(cusum.statistic(), 0.0);
  cusum.reset();
  EXPECT_DOUBLE_EQ(cusum.statistic(), 0.0);
  EXPECT_EQ(cusum.samples_seen(), 0);
}

TEST(NpCusumTest, RejectsBadThreshold) {
  EXPECT_THROW(NonParametricCusum({0.35, 0.0}), std::invalid_argument);
  EXPECT_THROW(NonParametricCusum({0.35, -1.0}), std::invalid_argument);
}

// --- ParametricCusum ------------------------------------------------------------

TEST(ParametricCusumTest, DetectsModeledShiftQuickly) {
  // Threshold 15: under H0 the LLR increment has mean -2 and sigma 2, so
  // pre-change excursions stay below it; under H1 the drift is +2/step.
  ParametricCusum cusum({0.0, 1.0, 0.5, 15.0});
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    ASSERT_FALSE(cusum.update(rng.normal(0.0, 0.5)).alarm) << i;
  }
  int steps = 0;
  while (!cusum.update(rng.normal(1.0, 0.5)).alarm) {
    ++steps;
    ASSERT_LT(steps, 60);
  }
  EXPECT_LT(steps, 25);
}

TEST(ParametricCusumTest, ValidatesParameters) {
  EXPECT_THROW(ParametricCusum({0.0, 1.0, 0.0, 5.0}), std::invalid_argument);
  EXPECT_THROW(ParametricCusum({1.0, 1.0, 0.5, 5.0}), std::invalid_argument);
  EXPECT_THROW(ParametricCusum({0.0, 1.0, 0.5, 0.0}), std::invalid_argument);
}

// --- charts ------------------------------------------------------------------

TEST(EwmaChartTest, FlagsSustainedShift) {
  EwmaChart chart(EwmaChartParams{});
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    ASSERT_FALSE(chart.update(rng.normal(1.0, 0.1)).alarm) << i;
  }
  bool alarmed = false;
  for (int i = 0; i < 50; ++i) {
    if (chart.update(rng.normal(2.0, 0.1)).alarm) {
      alarmed = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed);
}

TEST(EwmaChartTest, BaselineFreezesDuringAlarm) {
  EwmaChart chart(EwmaChartParams{});
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) (void)chart.update(rng.normal(1.0, 0.1));
  // A long-lasting shift must not be absorbed into the baseline: the
  // alarm should persist, not fade.
  int alarms = 0;
  for (int i = 0; i < 200; ++i) {
    if (chart.update(rng.normal(3.0, 0.1)).alarm) ++alarms;
  }
  EXPECT_GT(alarms, 150);
}

TEST(ShewhartTest, FiresOnOutlierOnly) {
  ShewhartChart chart(ShewhartParams{});
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    (void)chart.update(rng.normal(10.0, 1.0));
  }
  EXPECT_TRUE(chart.update(30.0).alarm);
  EXPECT_FALSE(chart.update(10.5).alarm);  // memoryless: back to normal
}

TEST(StaticThresholdTest, PureComparison) {
  StaticThreshold t(5.0);
  EXPECT_FALSE(t.update(5.0).alarm);
  EXPECT_TRUE(t.update(5.01).alarm);
  EXPECT_DOUBLE_EQ(t.threshold(), 5.0);
}

TEST(ChartsTest, ParameterValidation) {
  EXPECT_THROW(EwmaChart(EwmaChartParams{0.0, 3.0, 0.9, 8}),
               std::invalid_argument);
  EXPECT_THROW(EwmaChart(EwmaChartParams{0.2, -1.0, 0.9, 8}),
               std::invalid_argument);
  EXPECT_THROW(ShewhartChart(ShewhartParams{0.0, 0.9, 8}),
               std::invalid_argument);
}

// --- evaluator ------------------------------------------------------------------

TEST(EvaluatorTest, MeasuresDelayAndFalseAlarms) {
  NonParametricCusum cusum({0.35, 1.05});
  // Pre-onset spike (not sustained) then a real change at index 5.
  const std::vector<double> series = {0.0, 2.0, 0.0, 0.0, 0.0,
                                      1.0, 1.0, 1.0, 1.0, 1.0};
  const TrialResult result = run_trial(cusum, series, 5);
  EXPECT_EQ(result.false_alarms, 1);  // the isolated spike at index 1
  ASSERT_TRUE(result.detection_delay.has_value());
  // The spike decays to y=0.6 by the onset; the first attack sample adds
  // 0.65, crossing N=1.05 immediately: delay 0.
  EXPECT_EQ(*result.detection_delay, 0);
  EXPECT_EQ(result.statistic_path.size(), series.size());
}

TEST(EvaluatorTest, UndetectedTrialReportsNullopt) {
  NonParametricCusum cusum({0.35, 1.05});
  const std::vector<double> series(20, 0.1);
  const TrialResult result = run_trial(cusum, series, 10);
  EXPECT_FALSE(result.detection_delay.has_value());
  EXPECT_EQ(result.false_alarms, 0);
}

TEST(EvaluatorTest, EnsembleAggregation) {
  const EnsembleResult r = evaluate_ensemble(
      [] {
        return std::make_unique<NonParametricCusum>(
            NonParametricCusumParams{0.35, 1.05});
      },
      [](std::uint64_t trial) {
        // Even trials detectable, odd trials not.
        std::vector<double> series(30, 0.0);
        if (trial % 2 == 0) {
          for (std::size_t i = 10; i < series.size(); ++i) series[i] = 1.0;
        }
        return TrialSpec{series, 10};
      },
      10);
  EXPECT_EQ(r.trials, 10);
  EXPECT_EQ(r.detected, 5);
  EXPECT_DOUBLE_EQ(r.detection_probability, 0.5);
  EXPECT_GT(r.mean_detection_delay, 0.0);
  EXPECT_TRUE(std::isinf(r.mean_false_alarm_spacing));  // no false alarms
}

TEST(EvaluatorTest, TracedStepsMirrorStatisticPath) {
  NonParametricCusum cusum({0.35, 1.05});
  const std::vector<double> series = {0.0, 2.0, 0.0, 0.0, 0.0,
                                      1.0, 1.0, 1.0, 1.0, 1.0};
  obs::EventTracer tracer(64);
  const TraceOptions trace{&tracer, util::SimTime::seconds(20)};
  const TrialResult result = run_trial(cusum, series, 5, trace);

  ASSERT_EQ(tracer.size(), series.size());
  const std::vector<obs::Event> events = tracer.events();
  for (std::size_t n = 0; n < series.size(); ++n) {
    const auto& step = std::get<obs::DetectorStep>(events[n].payload);
    EXPECT_EQ(step.index, static_cast<std::int64_t>(n));
    EXPECT_DOUBLE_EQ(step.x, series[n]);
    EXPECT_DOUBLE_EQ(step.statistic, result.statistic_path[n]);
    EXPECT_EQ(step.alarm, result.statistic_path[n] > 1.05);
    EXPECT_EQ(events[n].at,
              trace.period * static_cast<std::int64_t>(n));
  }
}

TEST(EvaluatorTest, ValidatesInputs) {
  const auto factory = [] {
    return std::make_unique<NonParametricCusum>(
        NonParametricCusumParams{0.35, 1.05});
  };
  EXPECT_THROW(
      (void)evaluate_ensemble(
          factory,
          [](std::uint64_t) {
            return TrialSpec{{1.0}, 5};  // onset beyond end
          },
          1),
      std::invalid_argument);
  EXPECT_THROW((void)evaluate_ensemble(
                   factory,
                   [](std::uint64_t) { return TrialSpec{{}, 0}; }, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace syndog::detect
