// Tests for the extension features beyond the paper's core algorithm:
// Shiryaev-Roberts detection, adaptive site tuning, flash-crowd
// discrimination, last-mile deployment, and the RST-reflection argument
// for why flood sources must spoof unreachable addresses.
#include <gtest/gtest.h>

#include "syndog/attack/campaign.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/core/adaptive.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/detect/shiryaev.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/trace/site.hpp"

namespace syndog {
namespace {

using util::SimTime;

// --- Shiryaev-Roberts -------------------------------------------------------

TEST(ShiryaevRobertsTest, QuietUnderNormalInput) {
  detect::ShiryaevRoberts sr(detect::ShiryaevRobertsParams{});
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const detect::Decision d = sr.update(rng.uniform(0.0, 0.2));
    ASSERT_FALSE(d.alarm) << i;
  }
}

TEST(ShiryaevRobertsTest, DetectsSustainedShift) {
  detect::ShiryaevRoberts sr(detect::ShiryaevRobertsParams{});
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) (void)sr.update(rng.uniform(0.0, 0.2));
  int steps = 0;
  while (!sr.update(0.7).alarm) {
    ++steps;
    ASSERT_LT(steps, 30);
  }
  // log A = log(1000) ~ 6.9; drift g*(x-a) = 4*0.35 = 1.4/step -> ~5.
  EXPECT_LE(steps, 8);
}

TEST(ShiryaevRobertsTest, SurvivesLongQuietStretchesWithoutUnderflow) {
  detect::ShiryaevRoberts sr(detect::ShiryaevRobertsParams{});
  for (int i = 0; i < 100000; ++i) {
    (void)sr.update(-5.0);  // extremely "no change" evidence
  }
  // The statistic must recover in bounded time: log-space recursion keeps
  // log(1+R) >= 0, so ~5 shifted samples still suffice.
  int steps = 0;
  while (!sr.update(0.7).alarm) {
    ++steps;
    ASSERT_LT(steps, 30);
  }
}

TEST(ShiryaevRobertsTest, ResetAndValidation) {
  detect::ShiryaevRoberts sr(detect::ShiryaevRobertsParams{});
  (void)sr.update(2.0);
  EXPECT_GT(sr.statistic(), 0.0);
  sr.reset();
  EXPECT_EQ(sr.statistic(), 0.0);
  EXPECT_THROW(
      detect::ShiryaevRoberts(detect::ShiryaevRobertsParams{0.0, 0.35, 4.0}),
      std::invalid_argument);
  EXPECT_THROW(
      detect::ShiryaevRoberts(detect::ShiryaevRobertsParams{10.0, 0.35, 0.0}),
      std::invalid_argument);
}

// --- AdaptiveSynDog ---------------------------------------------------------

TEST(AdaptiveTest, LearnsSiteParametersFromQuietTraffic) {
  core::AdaptiveParams params;
  params.training_periods = 30;
  core::AdaptiveSynDog dog(params);
  util::Rng rng(3);
  for (int n = 0; n < 40; ++n) {
    const auto acks = static_cast<std::int64_t>(2000 + rng.uniform_int(-50,
                                                                       50));
    (void)dog.observe_period(acks + 60, acks);  // c ~= 0.03, tiny sigma
  }
  ASSERT_TRUE(dog.trained());
  EXPECT_NEAR(dog.learned_c(), 0.03, 0.01);
  // Learned offset sits between c and the universal 0.35, and the
  // threshold follows the design rule N = 3a.
  EXPECT_LT(dog.active_params().a, 0.35);
  EXPECT_GT(dog.active_params().a, dog.learned_c());
  EXPECT_NEAR(dog.active_params().threshold,
              3.0 * dog.active_params().a, 1e-9);
  // And the floor drops accordingly (universal floor here ~35 SYN/s).
  EXPECT_LT(dog.min_detectable_rate(), 25.0);
}

TEST(AdaptiveTest, TunedDetectorCatchesSubUniversalFlood) {
  // A flood at ~60% of the universal floor: invisible to the paper's
  // default parameters, caught after tuning.
  const auto run = [](bool adaptive) {
    core::AdaptiveParams params;
    params.training_periods = 40;
    core::AdaptiveSynDog adaptive_dog(params);
    core::SynDog fixed_dog(core::SynDogParams::paper_defaults());
    util::Rng rng(4);
    bool alarmed = false;
    for (int n = 0; n < 120; ++n) {
      const auto acks = static_cast<std::int64_t>(
          2000 + rng.uniform_int(-40, 40));
      std::int64_t syns = acks + 60;
      if (n >= 80) syns += 420;  // flood: 21 SYN/s * 20 s, floor is ~35
      const core::PeriodReport r =
          adaptive ? adaptive_dog.observe_period(syns, acks)
                   : fixed_dog.observe_period(syns, acks);
      if (n >= 80 && r.alarm) alarmed = true;
    }
    return alarmed;
  };
  EXPECT_FALSE(run(false));
  EXPECT_TRUE(run(true));
}

TEST(AdaptiveTest, FloodDuringTrainingIsNotLearned) {
  core::AdaptiveParams params;
  params.training_periods = 30;
  core::AdaptiveSynDog dog(params);
  util::Rng rng(5);
  // A flood rages through the would-be training window; its periods have
  // y > 0 and must not feed the estimator.
  for (int n = 0; n < 60; ++n) {
    const auto acks = static_cast<std::int64_t>(2000 +
                                                rng.uniform_int(-40, 40));
    const std::int64_t syns = acks + 60 + (n < 25 ? 3000 : 0);
    (void)dog.observe_period(syns, acks);
  }
  ASSERT_TRUE(dog.trained());
  // Learned c reflects the clean periods only.
  EXPECT_LT(dog.learned_c(), 0.06);
}

TEST(AdaptiveTest, Validation) {
  core::AdaptiveParams bad;
  bad.training_periods = 1;
  EXPECT_THROW(core::AdaptiveSynDog{bad}, std::invalid_argument);
  bad = core::AdaptiveParams{};
  bad.a_min = 0.0;
  EXPECT_THROW(core::AdaptiveSynDog{bad}, std::invalid_argument);
}

// --- flash crowds ------------------------------------------------------------

TEST(FlashCrowdTest, ModerateSurgeDoesNotAlarm) {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.disruptions_per_hour = 0.0;
  trace::ConnectionTrace background = trace::generate_site_trace(spec, 9);
  // 3x the site's volume for 4 minutes: a big legitimate event.
  trace::ConnectionTrace surge = trace::generate_flash_crowd(
      spec, SimTime::minutes(10), SimTime::minutes(4), 3.0, 9);
  const trace::ConnectionTrace merged =
      trace::merge_traces(std::move(background), std::move(surge));
  const trace::PeriodSeries ps =
      trace::extract_periods(merged, trace::kObservationPeriod);
  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
  for (const auto& r : reports) {
    EXPECT_FALSE(r.alarm) << "period " << r.period_index;
  }
}

TEST(FlashCrowdTest, EqualVolumeSpoofedFloodDoesAlarm) {
  // The discriminating pair: the same extra SYN volume as the 3x surge
  // above, but spoofed (no SYN/ACKs) -> must alarm.
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.disruptions_per_hour = 0.0;
  trace::PeriodSeries ps = trace::extract_periods(
      trace::generate_site_trace(spec, 9), trace::kObservationPeriod);
  attack::FloodSpec flood;
  flood.rate = 2.0 * spec.outbound_rate;  // the surge's extra volume
  flood.start = SimTime::minutes(10);
  flood.duration = SimTime::minutes(4);
  util::Rng rng(9);
  ps.add_outbound_syns(trace::bucket_times(
      attack::generate_flood_times(flood, rng), ps.period, ps.size()));
  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
  bool alarmed = false;
  for (const auto& r : reports) alarmed |= r.alarm;
  EXPECT_TRUE(alarmed);
}

TEST(FlashCrowdTest, SurgeConnectionsAreAnswered) {
  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  const trace::ConnectionTrace surge = trace::generate_flash_crowd(
      spec, SimTime::minutes(30), SimTime::minutes(5), 4.0, 11);
  EXPECT_GT(surge.attempts(), 100u);
  const double answered = static_cast<double>(surge.total_syn_acks()) /
                          static_cast<double>(surge.attempts());
  EXPECT_GT(answered, 0.95);
  for (const trace::Handshake& hs : surge.handshakes) {
    EXPECT_GE(hs.first_syn(), SimTime::minutes(30));
    EXPECT_LT(hs.first_syn(), SimTime::minutes(35));
  }
}

TEST(FlashCrowdTest, Validation) {
  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  EXPECT_THROW((void)trace::generate_flash_crowd(
                   spec, SimTime::minutes(1), SimTime::minutes(1), 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)trace::generate_flash_crowd(
          spec, SimTime::minutes(29), SimTime::minutes(5), 3.0, 1),
      std::invalid_argument);
}

// --- last-mile deployment ------------------------------------------------------

TEST(LastMileTest, VictimSideAgentDetectsArrivingFlood) {
  // The victim's own stub: servers listen, the flood arrives from the
  // Internet. The last-mile pair is incoming SYNs vs outgoing SYN/ACKs;
  // it diverges once the victim's backlog saturates.
  sim::StubNetworkParams params;
  params.num_hosts = 4;
  params.host_params.backlog = 256;
  sim::StubNetworkSim network(params);
  network.make_servers(80);

  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults(), {},
                          core::AgentMode::kLastMile);

  // Legitimate inbound browsing keeps the SYN/ACK level healthy.
  util::Rng rng(21);
  std::vector<SimTime> inbound;
  double t = 0.0;
  while (t < 10 * 60.0) {
    t += rng.exponential_mean(0.25);  // 4 conn/s
    inbound.push_back(SimTime::from_seconds(t));
  }
  network.schedule_inbound_background(inbound);

  // The flood arrives at host 1 from spoofed Internet sources: inject
  // inbound SYN frames at the router.
  attack::FloodSpec flood;
  flood.rate = 60.0;
  flood.start = SimTime::minutes(4);
  flood.duration = SimTime::minutes(5);
  util::Rng frng(22);
  for (const SimTime at : attack::generate_flood_times(flood, frng)) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(0xfffffe);
    spec.src_ip = net::Ipv4Address{0xf0000000u + frng.next_u32() % 65536};
    spec.dst_ip = params.stub_prefix.host(1);
    spec.src_port = static_cast<std::uint16_t>(frng.uniform_int(1024,
                                                                65535));
    spec.dst_port = 80;
    spec.seq = frng.next_u32();
    network.replay_at_router(at, net::make_syn(spec));
  }
  // Mid-flood the victim's backlog is saturated (75 s timeouts drain it
  // again once the flood stops, so check before the end).
  network.run_until(SimTime::minutes(8));
  EXPECT_TRUE(network.host(1).backlog_full());
  network.run_until(SimTime::minutes(10));

  ASSERT_TRUE(agent.ever_alarmed());
  // Detection needs the backlog to fill first (until then every SYN gets
  // its SYN/ACK), so the alarm comes at or after the onset period.
  const std::int64_t onset =
      flood.start / core::SynDogParams{}.observation_period;
  EXPECT_GE(agent.first_alarm_period(), onset);
  // No MAC evidence at the last mile: the sources are beyond the router.
  EXPECT_TRUE(agent.locator().suspects().empty());
}

TEST(LastMileTest, QuietVictimStubNeverAlarms) {
  sim::StubNetworkParams params;
  params.num_hosts = 4;
  sim::StubNetworkSim network(params);
  network.make_servers(80);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults(), {},
                          core::AgentMode::kLastMile);
  util::Rng rng(23);
  std::vector<SimTime> inbound;
  double t = 0.0;
  while (t < 6 * 60.0) {
    t += rng.exponential_mean(0.2);
    inbound.push_back(SimTime::from_seconds(t));
  }
  network.schedule_inbound_background(inbound);
  network.run_until(SimTime::minutes(6));
  EXPECT_FALSE(agent.ever_alarmed());
}

// --- RST reflection -----------------------------------------------------------

TEST(ReflectionTest, SpoofingReachableSourcesDefeatsTheFlood) {
  // Paper §1: "the spoofed source address must be an invalid IP address
  // ... otherwise, any endhost that receives the SYN/ACKs from the victim
  // would send a RST ... foiling the flooding attack." Reproduce both
  // sides of that claim.
  const auto run = [](bool reachable_spoof) {
    sim::StubNetworkParams params;
    params.num_hosts = 2;
    sim::StubNetworkSim network(params);
    sim::TcpHostParams victim_params;
    victim_params.backlog = 128;
    sim::TcpHost& victim = network.add_internet_host(
        "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
    victim.listen(80);
    // A real, reachable bystander host whose address the attacker might
    // spoof.
    sim::TcpHost& bystander = network.add_internet_host(
        "bystander", net::Ipv4Address(203, 0, 113, 5), {});

    std::vector<SimTime> flood;
    for (int i = 0; i < 3000; ++i) {
      flood.push_back(SimTime::milliseconds(5 * i));
    }
    const net::Ipv4Prefix pool =
        reachable_spoof ? net::Ipv4Prefix(bystander.ip(), 32)
                        : *net::Ipv4Prefix::parse("240.0.0.0/8");
    network.launch_flood(1, flood, victim.ip(), 80, pool);
    network.run_until(SimTime::seconds(40));

    return std::pair{victim.half_open_count(),
                     bystander.stats().rsts_sent};
  };

  const auto [unreachable_half_open, no_rsts] = run(false);
  EXPECT_GE(unreachable_half_open, 128u);  // backlog exhausted
  EXPECT_EQ(no_rsts, 0u);

  const auto [reachable_half_open, rsts] = run(true);
  EXPECT_LT(reachable_half_open, 32u);  // RSTs keep freeing the slots
  EXPECT_GT(rsts, 2000u);
}

// --- multi-stub campaign at the DES level -----------------------------------------

TEST(MultiStubTest, EveryParticipatingStubsAgentSeesItsShare) {
  // Three stubs, each with one slave flooding the same victim at
  // V/3 SYN/s; every stub's first-mile agent must alarm independently.
  attack::CampaignSpec campaign;
  campaign.aggregate_rate = 150.0;
  campaign.stub_networks = 3;
  campaign.start = SimTime::minutes(2);
  campaign.duration = SimTime::minutes(5);
  const attack::Campaign c(campaign, 77);

  int alarms = 0;
  for (std::int64_t stub = 0; stub < campaign.stub_networks; ++stub) {
    sim::StubNetworkParams params;
    params.num_hosts = 30;
    params.seed = 100 + static_cast<std::uint64_t>(stub);
    sim::StubNetworkSim network(params);
    core::SynDogAgent agent(network.router(), network.scheduler(),
                            core::SynDogParams::paper_defaults());

    util::Rng rng(200 + static_cast<std::uint64_t>(stub));
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < 8 * 60.0) {
      t += rng.exponential_mean(0.25);
      starts.push_back(SimTime::from_seconds(t));
    }
    network.schedule_outbound_background(starts);
    network.launch_flood(
        c.slaves_in_stub(stub)[0].host_index % params.num_hosts + 1,
        c.flood_times_in_stub(stub), net::Ipv4Address(198, 51, 100, 10),
        80, *net::Ipv4Prefix::parse("240.0.0.0/8"));
    network.run_until(SimTime::minutes(8));
    if (agent.ever_alarmed()) ++alarms;
  }
  EXPECT_EQ(alarms, 3);
}

}  // namespace
}  // namespace syndog
