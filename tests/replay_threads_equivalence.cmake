# Generates the demo capture once, replays it with --threads 1 (the
# single-threaded reference pump) and --threads 4 (the sharded parallel
# datapath), and requires the --dump-periods exports to be byte-identical.
# The dump carries every stub's per-period table at full double precision,
# so this guards the sharded ingest equivalence contract end to end through
# the example binary: same capture, same per-period detector trajectory,
# regardless of thread count (see docs/INGEST.md).
#
# Usage: cmake -DREPLAY=<path-to-syndog_replay> -DWORK=<dir>
#              -P replay_threads_equivalence.cmake
if(NOT REPLAY OR NOT WORK)
  message(FATAL_ERROR
          "replay_threads_equivalence.cmake needs -DREPLAY= and -DWORK=")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

execute_process(
  COMMAND ${REPLAY} --gen "${WORK}/demo.pcap"
  RESULT_VARIABLE status
  OUTPUT_VARIABLE out
  ERROR_VARIABLE out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "--gen failed (${status}):\n${out}")
endif()

foreach(threads 1 4)
  execute_process(
    COMMAND ${REPLAY} "${WORK}/demo.pcap"
            --stubs 10.1.0.0/16,10.9.0.0/16
            --threads ${threads}
            --dump-periods "${WORK}/periods_t${threads}.txt"
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "--threads ${threads} run failed (${status}):\n${out}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK}/periods_t1.txt" "${WORK}/periods_t4.txt"
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  file(READ "${WORK}/periods_t1.txt" t1)
  file(READ "${WORK}/periods_t4.txt" t4)
  message(FATAL_ERROR "sharded replay diverges from the reference pump:\n"
                      "--- --threads 1 ---\n${t1}"
                      "--- --threads 4 ---\n${t4}")
endif()
