# Runs `syndog_fleetctl gen` three times — twice inline, once with the
# threaded drain — and requires all three syndog-tsf/1 files to be
# byte-identical, then runs the summary, alarms, and mitigation rollups
# twice each and requires byte-identical text. Guards the two determinism contracts of
# the telemetry layer: a campaign is a pure function of its seed, and the
# consumer-thread drain never reaches the bytes (docs/OBSERVABILITY.md).
#
# Usage: cmake -DFLEETCTL=<path-to-syndog_fleetctl> -DWORK=<dir>
#              -P fleetctl_determinism.cmake
if(NOT FLEETCTL OR NOT WORK)
  message(FATAL_ERROR "fleetctl_determinism.cmake needs -DFLEETCTL= and -DWORK=")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

foreach(run a b c)
  set(flag "")
  if(run STREQUAL "c")
    set(flag "--threaded")
  endif()
  execute_process(
    COMMAND ${FLEETCTL} gen "${WORK}/${run}.tsf" ${flag}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "gen ${run} failed (${status}):\n${out}")
  endif()
endforeach()

foreach(other b c)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK}/a.tsf" "${WORK}/${other}.tsf"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "gen runs a and ${other} wrote different tsf bytes "
            "(run c is the threaded drain; a/b are inline)")
  endif()
endforeach()

foreach(cmd summary alarms mitigation)
  set(texts "")
  foreach(run 1 2)
    execute_process(
      COMMAND ${FLEETCTL} ${cmd} "${WORK}/a.tsf"
      RESULT_VARIABLE status
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT status EQUAL 0)
      message(FATAL_ERROR "${cmd} run ${run} failed (${status}):\n${err}")
    endif()
    list(APPEND texts "${out}")
  endforeach()
  list(GET texts 0 first)
  list(GET texts 1 second)
  if(NOT first STREQUAL second)
    message(FATAL_ERROR "${cmd} output differs between identical runs:\n"
                        "--- run 1 ---\n${first}\n--- run 2 ---\n${second}")
  endif()
endforeach()
