// Fleet telemetry backend: syndog-tsf/1 round-trip and damage tolerance,
// TelemetrySink drain modes (inline reference vs consumer thread), the
// byte-identity contract between them, rollups, and the zero-allocation
// guarantee on the producer path.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "syndog/core/fleet.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/telemetry/queue.hpp"
#include "syndog/telemetry/rollup.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

#include "support/alloc_guard.hpp"

namespace {

using syndog::core::FleetRecorder;
using syndog::core::SynDogParams;
using syndog::telemetry::DrainMode;
using syndog::telemetry::ReadEnd;
using syndog::telemetry::SampleQueue;
using syndog::telemetry::TelemetrySink;
using syndog::telemetry::TelemetrySinkConfig;
using syndog::telemetry::TsfReader;
using syndog::telemetry::TsfSample;
using syndog::telemetry::TsfWriter;
using syndog::util::Rng;
using syndog::util::SimTime;

// ---------------------------------------------------------------- queue

TEST(SampleQueueTest, FifoAndOverflow) {
  SampleQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: refused, not blocked
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
  // Slots recycle after wrap-around.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(q.try_push(round));
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SampleQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SampleQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SampleQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SampleQueue<int>(64).capacity(), 64u);
  EXPECT_THROW(SampleQueue<int>(0), std::invalid_argument);
}

// ------------------------------------------------------------ tsf format

/// Writes a small two-agent file and returns the bytes.
std::string write_sample_file(std::size_t block_capacity = 4) {
  std::ostringstream out;
  TsfWriter writer(out, block_capacity);
  const std::uint32_t stub_a = writer.add_agent("stub-a", 64512);
  const std::uint32_t stub_b = writer.add_agent("stub-b", 64513);
  const std::uint32_t m_k = writer.add_metric("k");
  const std::uint32_t m_alarm = writer.add_metric("alarm");
  const std::uint32_t s0 = writer.open_series(stub_a, m_k);
  const std::uint32_t s1 = writer.open_series(stub_b, m_k);
  const std::uint32_t s2 = writer.open_series(stub_a, m_alarm);
  for (int i = 0; i < 10; ++i) {
    writer.append(s0, SimTime::seconds(20 * (i + 1)), 100.0 + i);
    writer.append(s1, SimTime::seconds(20 * (i + 1)), 50.0 - i);
  }
  writer.append(s2, SimTime::seconds(60), 1.0);
  writer.append(s2, SimTime::seconds(120), 0.0);
  writer.finish();
  return out.str();
}

TEST(TsfFormatTest, RoundTripPreservesEverything) {
  const std::string bytes = write_sample_file();
  std::istringstream in(bytes);
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kEof);
  ASSERT_TRUE(reader.has_dictionaries());
  ASSERT_EQ(reader.agents().size(), 2u);
  EXPECT_EQ(reader.agents()[0].name, "stub-a");
  EXPECT_EQ(reader.agents()[0].as_number, 64512u);
  EXPECT_EQ(reader.agents()[1].name, "stub-b");
  ASSERT_EQ(reader.metrics().size(), 2u);
  EXPECT_EQ(reader.find_metric("k"), 0);
  EXPECT_EQ(reader.find_metric("alarm"), 1);
  EXPECT_EQ(reader.find_metric("nope"), -1);
  ASSERT_EQ(reader.series().size(), 3u);
  EXPECT_EQ(reader.total_samples(), 22u);
  ASSERT_EQ(reader.samples(0).size(), 10u);
  EXPECT_EQ(reader.samples(0)[3].at, SimTime::seconds(80));
  EXPECT_DOUBLE_EQ(reader.samples(0)[3].value, 103.0);
  EXPECT_DOUBLE_EQ(reader.samples(1)[9].value, 41.0);
  ASSERT_EQ(reader.samples(2).size(), 2u);
  EXPECT_DOUBLE_EQ(reader.samples(2)[0].value, 1.0);
  EXPECT_TRUE(reader.samples(99).empty());  // unknown id, no throw
}

TEST(TsfFormatTest, RandomizedRoundTripProperty) {
  Rng rng(20020820);
  for (int trial = 0; trial < 20; ++trial) {
    std::ostringstream out;
    const std::size_t block_capacity =
        static_cast<std::size_t>(rng.uniform_int(1, 32));
    TsfWriter writer(out, block_capacity);
    const int n_agents = static_cast<int>(rng.uniform_int(1, 5));
    const int n_metrics = static_cast<int>(rng.uniform_int(1, 4));
    for (int a = 0; a < n_agents; ++a) {
      writer.add_agent("agent" + std::to_string(a),
                       static_cast<std::uint32_t>(64512 + a % 3));
    }
    for (int m = 0; m < n_metrics; ++m) {
      writer.add_metric("metric" + std::to_string(m));
    }
    std::vector<std::vector<TsfSample>> expected;
    for (int a = 0; a < n_agents; ++a) {
      for (int m = 0; m < n_metrics; ++m) {
        writer.open_series(static_cast<std::uint32_t>(a),
                           static_cast<std::uint32_t>(m));
        expected.emplace_back();
      }
    }
    const int n_samples = static_cast<int>(rng.uniform_int(0, 400));
    std::int64_t t = 0;
    for (int i = 0; i < n_samples; ++i) {
      const auto sid = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(expected.size()) - 1));
      // Mostly forward steps, occasionally backwards (delta coding must
      // handle negative deltas), occasionally huge jumps.
      t += rng.uniform_int(-1'000'000, 50'000'000'000);
      const double v = rng.normal(0.0, 1e6);
      writer.append(sid, SimTime::nanoseconds(t), v);
      expected[sid].push_back(TsfSample{SimTime::nanoseconds(t), v});
    }
    writer.finish();

    std::istringstream in(out.str());
    TsfReader reader(in);
    ASSERT_EQ(reader.end(), ReadEnd::kEof) << "trial " << trial;
    ASSERT_TRUE(reader.has_dictionaries());
    ASSERT_EQ(reader.series().size(), expected.size());
    for (std::size_t sid = 0; sid < expected.size(); ++sid) {
      const auto& got = reader.samples(static_cast<std::uint32_t>(sid));
      ASSERT_EQ(got.size(), expected[sid].size()) << "trial " << trial;
      EXPECT_EQ(reader.series()[sid].samples, expected[sid].size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].at, expected[sid][i].at);
        EXPECT_DOUBLE_EQ(got[i].value, expected[sid][i].value);
      }
    }
  }
}

TEST(TsfFormatTest, NotATsfStreamThrows) {
  std::istringstream empty("");
  EXPECT_THROW(TsfReader{empty}, std::runtime_error);
  std::istringstream junk("this is not a telemetry file at all");
  EXPECT_THROW(TsfReader{junk}, std::runtime_error);
}

TEST(TsfFormatTest, TruncationRecoversIntactPrefix) {
  const std::string bytes = write_sample_file(/*block_capacity=*/4);
  // Cut everywhere from just past the header to just before the end; the
  // reader must never throw and never report a clean EOF.
  for (std::size_t cut = 16; cut < bytes.size(); cut += 3) {
    std::istringstream in(bytes.substr(0, cut));
    TsfReader reader(in);
    EXPECT_EQ(reader.end(), ReadEnd::kTruncated) << "cut at " << cut;
    EXPECT_LE(reader.total_samples(), 22u);
  }
  // Cutting exactly nothing is the clean file.
  std::istringstream whole(bytes);
  EXPECT_EQ(TsfReader(whole).end(), ReadEnd::kEof);
}

TEST(TsfFormatTest, TruncationMidBlocksKeepsEarlierBlocks) {
  const std::string bytes = write_sample_file(/*block_capacity=*/4);
  // With block capacity 4 and 10 appends per k-series, two full blocks per
  // k-series flush during the run (interleaved: s0,s1,s0,s1). Cut right
  // after the second block and the first block's 4 samples must survive.
  // Block size: 20-byte header + varint timestamps + 8 bytes per value.
  std::size_t block_end = 16;
  for (int skipped = 0; skipped < 2; ++skipped) {
    const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
    const std::size_t payload_len =
        static_cast<std::size_t>(base[block_end + 12]) |
        static_cast<std::size_t>(base[block_end + 13]) << 8 |
        static_cast<std::size_t>(base[block_end + 14]) << 16 |
        static_cast<std::size_t>(base[block_end + 15]) << 24;
    block_end += 20 + payload_len;
  }
  std::istringstream in(bytes.substr(0, block_end + 5));
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kTruncated);
  EXPECT_EQ(reader.blocks_read(), 2u);
  EXPECT_EQ(reader.samples(0).size(), 4u);
  EXPECT_EQ(reader.samples(1).size(), 4u);
  EXPECT_FALSE(reader.has_dictionaries());
}

TEST(TsfFormatTest, GarbageTailAfterTrailerIsTruncatedVerdict) {
  std::string bytes = write_sample_file();
  bytes += "garbage garbage garbage";
  std::istringstream in(bytes);
  TsfReader reader(in);
  // The trailer is no longer at EOF, so dictionaries are unavailable, but
  // every data block still decodes.
  EXPECT_EQ(reader.end(), ReadEnd::kTruncated);
  EXPECT_FALSE(reader.has_dictionaries());
  EXPECT_EQ(reader.total_samples(), 22u);
}

TEST(TsfFormatTest, CorruptBlockPayloadDropsSuffix) {
  std::string bytes = write_sample_file(/*block_capacity=*/4);
  bytes[16 + 20 + 2] ^= 0x40;  // flip a bit inside the first block payload
  std::istringstream in(bytes);
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kTruncated);  // checksum catches it
  EXPECT_EQ(reader.blocks_read(), 0u);
  // The footer still names everything even though the data is gone.
  EXPECT_TRUE(reader.has_dictionaries());
  EXPECT_EQ(reader.agents().size(), 2u);
}

TEST(TsfFormatTest, CorruptFooterLosesDictionariesNotData) {
  std::string bytes = write_sample_file();
  // The footer payload sits between the last block and the 16-byte
  // trailer; flip a byte 20 bytes before the trailer (inside the footer).
  bytes[bytes.size() - 20] ^= 0x01;
  std::istringstream in(bytes);
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kTruncated);
  EXPECT_FALSE(reader.has_dictionaries());
  EXPECT_EQ(reader.total_samples(), 22u);  // blocks unaffected
  EXPECT_TRUE(reader.agents().empty());
  // Synthesized directory still addresses recovered series by id.
  EXPECT_EQ(reader.series().size(), 3u);
}

TEST(TsfFormatTest, EmptyFileIsCleanEof) {
  std::ostringstream out;
  TsfWriter writer(out);
  writer.finish();
  std::istringstream in(out.str());
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kEof);
  EXPECT_TRUE(reader.has_dictionaries());
  EXPECT_EQ(reader.total_samples(), 0u);
}

// ---------------------------------------------------------------- sink

/// Drives the same deterministic mini-campaign through a sink and returns
/// the file bytes plus final stats.
std::string run_campaign(DrainMode mode, std::uint64_t seed,
                         syndog::telemetry::SinkStats* stats_out = nullptr) {
  std::ostringstream out;
  TelemetrySinkConfig cfg;
  cfg.mode = mode;
  cfg.queue_capacity = 1 << 14;
  cfg.block_capacity = 64;
  TelemetrySink sink(out, cfg);
  FleetRecorder fleet(sink);
  Rng rng(seed);
  for (int a = 0; a < 8; ++a) {
    fleet.add_agent("stub" + std::to_string(a),
                    static_cast<std::uint32_t>(64512 + a / 4),
                    SynDogParams{});
  }
  for (int period = 0; period < 200; ++period) {
    const SimTime at = SimTime::seconds(20 * (period + 1));
    for (std::size_t a = 0; a < fleet.agent_count(); ++a) {
      const std::int64_t syn_acks = rng.poisson(40.0);
      // Agent 7 turns hostile for 30 periods mid-run.
      const bool flooding = a == 7 && period >= 120 && period < 150;
      const std::int64_t syns =
          syn_acks + rng.poisson(2.0) + (flooding ? 60 : 0);
      fleet.observe(a, syns, syn_acks, at);
    }
  }
  sink.finish();
  if (stats_out != nullptr) *stats_out = sink.stats();
  return out.str();
}

TEST(TelemetrySinkTest, InlineCampaignRoundTrips) {
  syndog::telemetry::SinkStats stats;
  const std::string bytes = run_campaign(DrainMode::kInline, 7, &stats);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.pushed, stats.drained);
  EXPECT_GT(stats.blocks, 0u);
  std::istringstream in(bytes);
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kEof);
  EXPECT_EQ(reader.agents().size(), 8u);
  EXPECT_EQ(reader.total_samples(), stats.drained);

  const auto timeline = syndog::telemetry::alarm_timeline(reader, "alarm");
  EXPECT_EQ(timeline.agents_alarmed, 1u);  // only the flooding stub
  ASSERT_GE(timeline.rising_edges, 1u);
  const auto first =
      syndog::telemetry::first_alarm(timeline, /*agent=*/7);
  ASSERT_TRUE(first.has_value());
  // The flood starts at period 120 (t = 2420 s); CUSUM needs ~2 periods.
  EXPECT_GT(*first, SimTime::seconds(2400));
  EXPECT_LT(*first, SimTime::seconds(2700));
}

TEST(TelemetrySinkTest, SameSeedSameBytes) {
  EXPECT_EQ(run_campaign(DrainMode::kInline, 41),
            run_campaign(DrainMode::kInline, 41));
  EXPECT_NE(run_campaign(DrainMode::kInline, 41),
            run_campaign(DrainMode::kInline, 42));
}

TEST(TelemetrySinkTest, PushAfterFinishThrows) {
  std::ostringstream out;
  TelemetrySink sink(out);
  const std::uint32_t agent = sink.register_agent("stub", 64512);
  const std::uint32_t series = sink.series_id(agent, sink.metric_id("k"));
  sink.push(series, SimTime::seconds(20), 1.0);
  sink.finish();
  sink.finish();  // idempotent
  EXPECT_THROW(sink.push(series, SimTime::seconds(40), 2.0),
               std::logic_error);
}

TEST(TelemetrySinkTest, SnapshotAndTraceAdapters) {
  std::ostringstream out;
  TelemetrySink sink(out);
  const std::uint32_t agent = sink.register_agent("stub", 64512);

  syndog::obs::Registry registry;
  registry.counter("packets").add(42);
  registry.gauge("depth").set(3.5);
  sink.push_snapshot(agent, SimTime::seconds(20), registry.snapshot());

  syndog::obs::EventTracer tracer(16);
  tracer.record(SimTime::seconds(20),
                syndog::obs::PeriodRollover{0, 100, 90});
  tracer.record(SimTime::seconds(20),
                syndog::obs::CusumUpdate{0, 10.0, 90.0, 0.11, 0.0});
  tracer.record(SimTime::seconds(40),
                syndog::obs::AlarmRaised{1, 1.2, 1.05});
  tracer.record(SimTime::seconds(60), syndog::obs::AlarmCleared{2, 0.3});
  sink.push_trace(agent, tracer);
  sink.finish();

  std::istringstream in(out.str());
  TsfReader reader(in);
  ASSERT_EQ(reader.end(), ReadEnd::kEof);
  EXPECT_GE(reader.find_metric("counter.packets"), 0);
  EXPECT_GE(reader.find_metric("gauge.depth"), 0);
  EXPECT_GE(reader.find_metric("trace.syn"), 0);
  const auto timeline =
      syndog::telemetry::alarm_timeline(reader, "trace.alarm");
  EXPECT_EQ(timeline.rising_edges, 1u);
  ASSERT_EQ(timeline.edges.size(), 2u);
  EXPECT_EQ(timeline.edges[0].at, SimTime::seconds(40));
  EXPECT_FALSE(timeline.edges[1].raised);
}

// -------------------------------------------------- threaded drain (tsan)

TEST(TelemetryThreadedTest, ByteIdenticalToInlineReference) {
  syndog::telemetry::SinkStats inline_stats;
  syndog::telemetry::SinkStats threaded_stats;
  const std::string ref = run_campaign(DrainMode::kInline, 11, &inline_stats);
  const std::string threaded =
      run_campaign(DrainMode::kThreaded, 11, &threaded_stats);
  ASSERT_EQ(threaded_stats.dropped, 0u);
  EXPECT_EQ(threaded_stats.drained, inline_stats.drained);
  EXPECT_EQ(threaded, ref);  // the contract: interleaving never reaches bytes
}

TEST(TelemetryThreadedTest, AccountingBalancesUnderPressure) {
  // A deliberately tiny queue: drops are *allowed* here — the invariant
  // under pressure is that nothing vanishes silently and the file holds
  // exactly the drained samples.
  std::ostringstream out;
  TelemetrySinkConfig cfg;
  cfg.mode = DrainMode::kThreaded;
  cfg.queue_capacity = 8;
  TelemetrySink sink(out, cfg);
  const std::uint32_t agent = sink.register_agent("stub", 64512);
  const std::uint32_t series = sink.series_id(agent, sink.metric_id("k"));
  constexpr std::uint64_t kAttempts = 50'000;
  for (std::uint64_t i = 0; i < kAttempts; ++i) {
    sink.push(series, SimTime::nanoseconds(static_cast<std::int64_t>(i)),
              static_cast<double>(i));
  }
  sink.finish();
  const auto stats = sink.stats();
  EXPECT_EQ(stats.pushed + stats.dropped, kAttempts);
  EXPECT_EQ(stats.drained, stats.pushed);
  std::istringstream in(out.str());
  TsfReader reader(in);
  EXPECT_EQ(reader.end(), ReadEnd::kEof);
  EXPECT_EQ(reader.total_samples(), stats.drained);
}

TEST(TelemetryThreadedTest, FinishDrainsEverythingPushedBeforeIt) {
  std::ostringstream out;
  TelemetrySinkConfig cfg;
  cfg.mode = DrainMode::kThreaded;
  cfg.queue_capacity = 1 << 16;
  TelemetrySink sink(out, cfg);
  const std::uint32_t agent = sink.register_agent("stub", 64512);
  const std::uint32_t series = sink.series_id(agent, sink.metric_id("k"));
  constexpr std::uint64_t kSamples = 20'000;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    sink.push(series, SimTime::nanoseconds(static_cast<std::int64_t>(i)),
              static_cast<double>(i));
  }
  sink.finish();
  const auto stats = sink.stats();
  ASSERT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.drained, kSamples);
}

// ------------------------------------------------------- allocation guard

TEST(TelemetryAllocTest, ThreadedPushIsAllocationFree) {
  std::ostringstream out;
  TelemetrySinkConfig cfg;
  cfg.mode = DrainMode::kThreaded;
  cfg.queue_capacity = 1 << 15;
  // Block capacity larger than the pushed count: the consumer appends into
  // preallocated column vectors and never flushes during the window, so
  // the guard covers the whole pipeline, not just the queue.
  cfg.block_capacity = 1 << 16;
  TelemetrySink sink(out, cfg);
  const std::uint32_t agent = sink.register_agent("stub", 64512);
  const std::uint32_t series = sink.series_id(agent, sink.metric_id("k"));
  sink.push(series, SimTime::seconds(20), 1.0);  // warm-up

  syndog::testsupport::AllocGuard guard;
  for (int i = 0; i < 10'000; ++i) {
    sink.push(series, SimTime::seconds(20 * (i + 2)),
              static_cast<double>(i));
  }
  const std::size_t allocs = guard.stop();
  EXPECT_EQ(allocs, 0u);
  sink.finish();
  EXPECT_EQ(sink.stats().dropped, 0u);
}

TEST(TelemetryAllocTest, InlineAppendIsAllocationFreeBetweenFlushes) {
  std::ostringstream out;
  TelemetrySinkConfig cfg;
  cfg.block_capacity = 1 << 16;
  TelemetrySink sink(out, cfg);
  const std::uint32_t agent = sink.register_agent("stub", 64512);
  const std::uint32_t series = sink.series_id(agent, sink.metric_id("k"));
  sink.push(series, SimTime::seconds(20), 1.0);

  syndog::testsupport::AllocGuard guard;
  for (int i = 0; i < 10'000; ++i) {
    sink.push(series, SimTime::seconds(20 * (i + 2)),
              static_cast<double>(i));
  }
  EXPECT_EQ(guard.stop(), 0u);
  sink.finish();
}

// --------------------------------------------------------------- rollups

TEST(RollupTest, DriftAndHealthAndCsv) {
  std::ostringstream out;
  TelemetrySink sink(out);
  const std::uint32_t a0 = sink.register_agent("stub-a", 64512);
  const std::uint32_t a1 = sink.register_agent("stub-b", 64513);
  const std::uint32_t m_k = sink.metric_id("k");
  const std::uint32_t m_health = sink.metric_id("health");
  const std::uint32_t s_k0 = sink.series_id(a0, m_k);
  const std::uint32_t s_k1 = sink.series_id(a1, m_k);
  const std::uint32_t s_h1 = sink.series_id(a1, m_health);
  for (int i = 0; i < 6; ++i) {
    sink.push(s_k0, SimTime::minutes(i), 100.0 + i);
    sink.push(s_k1, SimTime::minutes(i), 10.0);
  }
  sink.push(s_h1, SimTime::minutes(2), 1.0);  // stub-b degrades
  sink.finish();

  std::istringstream in(out.str());
  TsfReader reader(in);
  ASSERT_EQ(reader.end(), ReadEnd::kEof);

  // Two-minute buckets over six minutes → three points, both agents mixed.
  const auto drift =
      syndog::telemetry::metric_drift(reader, "k", SimTime::minutes(2));
  ASSERT_EQ(drift.size(), 3u);
  EXPECT_EQ(drift[0].bucket_start, SimTime::zero());
  EXPECT_EQ(drift[0].samples, 4u);
  EXPECT_DOUBLE_EQ(drift[0].min, 10.0);
  EXPECT_DOUBLE_EQ(drift[0].max, 101.0);
  EXPECT_DOUBLE_EQ(drift[0].mean, (100.0 + 101.0 + 10.0 + 10.0) / 4.0);
  // Restricted to stub-a's AS.
  const auto drift_as = syndog::telemetry::metric_drift(
      reader, "k", SimTime::minutes(2), 64512);
  ASSERT_EQ(drift_as.size(), 3u);
  EXPECT_EQ(drift_as[0].samples, 2u);

  const auto health = syndog::telemetry::health_summary(reader, "health");
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].as_number, 64512u);
  EXPECT_EQ(health[0].healthy, 1u);
  EXPECT_EQ(health[1].as_number, 64513u);
  EXPECT_EQ(health[1].degraded, 1u);
  EXPECT_EQ(health[1].transitions, 1u);

  const std::string csv = syndog::telemetry::drift_csv(drift);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "bucket_t_s,mean,min,max,samples");
  const std::string health_csv = syndog::telemetry::health_csv(health);
  EXPECT_NE(health_csv.find("64513,1,0,1,0,1"), std::string::npos);

  const std::string json = syndog::telemetry::fleet_summary_json(reader);
  EXPECT_NE(json.find("\"format\":\"syndog-tsf/1\""), std::string::npos);
  EXPECT_NE(json.find("\"read_end\":\"eof\""), std::string::npos);
  EXPECT_NE(json.find("\"64512\":1"), std::string::npos);
}

TEST(RollupTest, AlarmTimelineOrderedByAsAgentTime) {
  std::ostringstream out;
  TelemetrySink sink(out);
  const std::uint32_t a0 = sink.register_agent("late", 64513);
  const std::uint32_t a1 = sink.register_agent("early", 64512);
  const std::uint32_t m_alarm = sink.metric_id("alarm");
  const std::uint32_t s0 = sink.series_id(a0, m_alarm);
  const std::uint32_t s1 = sink.series_id(a1, m_alarm);
  sink.push(s0, SimTime::seconds(100), 1.0);
  sink.push(s1, SimTime::seconds(500), 1.0);
  sink.push(s1, SimTime::seconds(600), 0.0);
  sink.finish();

  std::istringstream in(out.str());
  TsfReader reader(in);
  const auto timeline = syndog::telemetry::alarm_timeline(reader, "alarm");
  ASSERT_EQ(timeline.edges.size(), 3u);
  EXPECT_EQ(timeline.agents_alarmed, 2u);
  // AS 64512 (agent "early") sorts first despite alarming later.
  EXPECT_EQ(timeline.edges[0].as_number, 64512u);
  EXPECT_EQ(timeline.edges[0].at, SimTime::seconds(500));
  EXPECT_EQ(timeline.edges[2].as_number, 64513u);
  const std::string csv =
      syndog::telemetry::alarm_timeline_csv(reader, timeline);
  EXPECT_NE(csv.find("64512,early,500,raise"), std::string::npos);
  EXPECT_NE(csv.find("64512,early,600,clear"), std::string::npos);
  EXPECT_NE(csv.find("64513,late,100,raise"), std::string::npos);
}

}  // namespace
