// Property-style and parameterized suites for the system's core
// invariants: CUSUM behaviour under arbitrary inputs, scale-invariance of
// the normalized statistic (the paper's central design claim), detection
// monotonicity, and robustness of the parsers against mutated input.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "syndog/attack/flood.hpp"
#include "syndog/classify/segment.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/trace/site.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/stats/series.hpp"

namespace syndog {
namespace {

// --- CUSUM invariants over random inputs ------------------------------------------

class CusumPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CusumPropertyTest, StatisticIsBoundedByIncrementsAndNonNegative) {
  util::Rng rng(GetParam());
  detect::NonParametricCusum cusum({0.35, 1.05});
  double prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    const double y = cusum.update(x).statistic;
    EXPECT_GE(y, 0.0);
    // One step can move the statistic by at most |x - a|.
    EXPECT_LE(std::abs(y - prev), std::abs(x - 0.35) + 1e-12);
    prev = y;
  }
}

TEST_P(CusumPropertyTest, MonotoneInInputSeries) {
  // Element-wise larger inputs can never produce a smaller statistic:
  // a flood added on top of any background only helps detection.
  util::Rng rng(GetParam() ^ 0x5eed);
  std::vector<double> base(500);
  std::vector<double> boosted(500);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = rng.uniform(-0.5, 0.5);
    boosted[i] = base[i] + (rng.bernoulli(0.3) ? rng.uniform(0.0, 1.0)
                                               : 0.0);
  }
  detect::NonParametricCusum a({0.35, 1.05});
  detect::NonParametricCusum b({0.35, 1.05});
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double ya = a.update(base[i]).statistic;
    const double yb = b.update(boosted[i]).statistic;
    EXPECT_GE(yb, ya - 1e-12) << "at step " << i;
  }
}

TEST_P(CusumPropertyTest, RecursiveFormEqualsMaxIncrementForm) {
  // Eq. (3): yn = Sn - min_{k<=n} Sk, with Sn the running sum of
  // (Xi - a). The recursive Eq. (2) must agree exactly.
  util::Rng rng(GetParam() ^ 0xf00d);
  detect::NonParametricCusum cusum({0.35, 1.05});
  double running = 0.0;
  double min_running = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0.1, 0.8);
    running += x - 0.35;
    min_running = std::min(min_running, running);
    const double y = cusum.update(x).statistic;
    EXPECT_NEAR(y, running - min_running, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CusumPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// --- scale invariance of the normalized statistic -----------------------------------

class ScaleInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleInvarianceTest, NormalizedMeanIndependentOfSiteSize) {
  // The paper's core design claim (§3.2): Xn = Delta/K does not depend on
  // the network size — only on TCP protocol behaviour. Scale the site's
  // rate by 10-1000x and the mean of Xn must stay put (= c of the loss
  // model), far below a = 0.35.
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  spec.duration = util::SimTime::minutes(30);
  spec.inbound_rate = 0.0;
  spec.disruptions_per_hour = 0.0;
  spec.arrival_kind = trace::ArrivalKind::kPoisson;
  spec.outbound_rate = GetParam();

  const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 77);
  const trace::PeriodSeries ps =
      trace::extract_periods(tr, trace::kObservationPeriod);
  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);

  stats::OnlineStats x_stats;
  for (const core::PeriodReport& r : reports) x_stats.add(r.x);
  const double expected_c = trace::normalized_difference_mean(
      spec.handshake.no_answer_probability, 2);
  // Small sites are noisier; tolerance scales with 1/sqrt(rate).
  EXPECT_NEAR(x_stats.mean(), expected_c,
              0.02 + 0.3 / std::sqrt(GetParam()));
  EXPECT_LT(x_stats.mean(), 0.35 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, ScaleInvarianceTest,
                         ::testing::Values(2.0, 10.0, 50.0, 200.0, 1000.0),
                         [](const auto& info) {
                           return "rate_" + std::to_string(
                               static_cast<int>(info.param));
                         });

// --- detection monotonicity -----------------------------------------------------

TEST(DetectionPropertyTest, StatisticGrowsWithFloodRate) {
  // For the same background and onset, a faster flood can only push the
  // peak statistic higher.
  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const trace::ConnectionTrace background =
      trace::generate_site_trace(spec, 31);
  const trace::PeriodSeries base =
      trace::extract_periods(background, trace::kObservationPeriod);

  double prev_peak = -1.0;
  double first_peak = 0.0;
  double last_peak = 0.0;
  for (const double fi : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    trace::PeriodSeries ps = base;
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start = util::SimTime::minutes(5);
    util::Rng rng(7);  // same seed: coupled flood streams
    ps.add_outbound_syns(trace::bucket_times(
        attack::generate_flood_times(flood, rng), ps.period, ps.size()));
    const auto reports = core::run_over_series(
        core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
    double peak = 0.0;
    for (const auto& r : reports) peak = std::max(peak, r.y);
    // Non-decreasing everywhere (sub-floor rates can tie at zero)...
    EXPECT_GE(peak, prev_peak) << "fi=" << fi;
    prev_peak = peak;
    if (fi == 10.0) first_peak = peak;
    if (fi == 160.0) last_peak = peak;
  }
  // ...and strictly growing across the floor.
  EXPECT_GT(last_peak, first_peak + 1.0);
}

TEST(DetectionPropertyTest, FloodBelowFloorNeverCrossesDesignThreshold) {
  // Eq. (8): floods below f_min = (a-c)K/t0 cannot accumulate past any
  // fixed threshold in bounded time — the statistic stays near zero.
  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 100 + seed),
        trace::kObservationPeriod);
    attack::FloodSpec flood;
    flood.rate = 10.0;  // far below UNC's 37 SYN/s floor
    flood.start = util::SimTime::minutes(5);
    util::Rng rng(seed);
    ps.add_outbound_syns(trace::bucket_times(
        attack::generate_flood_times(flood, rng), ps.period, ps.size()));
    const auto reports = core::run_over_series(
        core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
    for (const auto& r : reports) {
      EXPECT_LT(r.y, 1.05) << "seed " << seed;
    }
  }
}

// --- parser robustness ------------------------------------------------------------

TEST(FuzzLiteTest, MutatedFramesNeverCrashDecoderOrClassifier) {
  util::Rng rng(12345);
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  const net::ByteBuffer original = net::encode_frame(net::make_syn(spec));

  for (int round = 0; round < 2000; ++round) {
    net::ByteBuffer frame = original;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      frame[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1))] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.3)) {
      frame.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()))));
    }
    // Must not crash; results are unconstrained.
    (void)net::decode_frame(frame);
    (void)classify::classify_frame_fast(frame);
  }
}

TEST(FuzzLiteTest, TruncatedPcapFilesNeverCrashReader) {
  std::stringstream buf;
  pcap::Writer writer(buf);
  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  for (int i = 0; i < 4; ++i) {
    writer.write(util::SimTime::seconds(i),
                 net::encode_frame(net::make_syn(spec)));
  }
  const std::string full = buf.str();
  for (std::size_t len = 0; len <= full.size(); len += 3) {
    std::stringstream cut(full.substr(0, len));
    try {
      pcap::Reader reader(cut);
      (void)reader.read_all();
    } catch (const std::runtime_error&) {
      // Malformed header: acceptable, as long as it's an exception.
    }
  }
}

// --- sweep: every site detects a strong flood with the universal parameters ----------

class UniversalParametersTest : public ::testing::TestWithParam<
                                    trace::SiteId> {};

TEST_P(UniversalParametersTest, FiveTimesFloorIsAlwaysCaught) {
  // The same (a, N) works at every site once rates are normalized: a
  // flood at 5x the site's own floor is detected quickly, with no false
  // alarm beforehand.
  const trace::SiteSpec spec = trace::site_spec(GetParam());
  trace::PeriodSeries ps = trace::extract_periods(
      trace::generate_site_trace(spec, 55), trace::kObservationPeriod);
  const double fmin = core::SynDog::min_detectable_rate(
      0.35, spec.expected_c, spec.expected_syn_ack_per_period,
      trace::kObservationPeriod);

  attack::FloodSpec flood;
  flood.rate = 5.0 * fmin;
  flood.start = util::SimTime::from_seconds(
      spec.duration.to_seconds() / 3.0);
  util::Rng rng(5);
  ps.add_outbound_syns(trace::bucket_times(
      attack::generate_flood_times(flood, rng), ps.period, ps.size()));

  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
  const std::int64_t onset = flood.start / ps.period;
  std::int64_t first_alarm = -1;
  for (const auto& r : reports) {
    if (r.alarm && first_alarm < 0) first_alarm = r.period_index;
  }
  ASSERT_GE(first_alarm, onset) << "false alarm before the flood";
  EXPECT_LE(first_alarm, onset + 5) << "detection too slow at 5x floor";
}

INSTANTIATE_TEST_SUITE_P(AllSites, UniversalParametersTest,
                         ::testing::Values(trace::SiteId::kHarvard,
                                           trace::SiteId::kUnc,
                                           trace::SiteId::kAuckland),
                         [](const auto& info) {
                           return std::string(trace::to_string(info.param));
                         });

}  // namespace
}  // namespace syndog
