# Runs a bench binary with --deterministic twice into separate sidecar
# directories and requires the BENCH_<NAME>.json exports to be
# byte-identical (wall-derived scalars are suppressed by the flag, so the
# export must be a pure function of the bench's seeds). Generic sibling
# of replay_determinism.cmake; EXTRA_COMPARE may list additional
# file names (relative to the sidecar dir) that must also match, e.g. the
# tsf files bench_fleet_telemetry writes.
#
# Usage: cmake -DBENCH=<path> -DNAME=<bench name> -DWORK=<dir>
#              [-DEXTRA_COMPARE=f1,f2] -P sidecar_determinism.cmake
if(NOT BENCH OR NOT NAME OR NOT WORK)
  message(FATAL_ERROR
          "sidecar_determinism.cmake needs -DBENCH=, -DNAME= and -DWORK=")
endif()

foreach(run a b)
  file(REMOVE_RECURSE "${WORK}/${run}")
  file(MAKE_DIRECTORY "${WORK}/${run}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SYNDOG_BENCH_DIR=${WORK}/${run}
            ${BENCH} --deterministic
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "run ${run} failed (${status}):\n${out}")
  endif()
endforeach()

set(compare "BENCH_${NAME}.json")
if(EXTRA_COMPARE)
  string(REPLACE "," ";" extra "${EXTRA_COMPARE}")
  list(APPEND compare ${extra})
endif()

foreach(file ${compare})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK}/a/${file}" "${WORK}/b/${file}"
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
            "deterministic runs of ${NAME} wrote different ${file}")
  endif()
endforeach()
