// Cross-module integration tests: trace -> packets -> router -> agent,
// the live DES end to end, and the pcap round trip — each path exercising
// the same detection pipeline the paper's Fig. 6 experiment uses.
#include <gtest/gtest.h>

#include <sstream>

#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/trace/render.hpp"
#include "syndog/trace/site.hpp"

namespace syndog {
namespace {

using util::SimTime;

/// A small, fast site: ~8 conn/s for 10 minutes.
trace::SiteSpec small_site() {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  spec.duration = SimTime::minutes(10);
  spec.outbound_rate = 8.0;
  spec.inbound_rate = 0.0;
  spec.disruptions_per_hour = 0.0;
  spec.expected_syn_ack_per_period = 8.0 * 20.0;
  return spec;
}

TEST(IntegrationTest, TraceDrivenReplayDetectsAndLocatesFlood) {
  // Paper Fig. 6: normal bidirectional traffic replayed through the leaf
  // router with flooding traffic mixed in; SYN-dog's agent watches the
  // interface taps.
  const trace::SiteSpec spec = small_site();
  const trace::ConnectionTrace background =
      trace::generate_site_trace(spec, 11);

  trace::RenderConfig render_cfg;
  std::vector<trace::TimedPacket> packets =
      trace::render_trace(background, render_cfg);

  attack::FloodSpec flood;
  flood.rate = 60.0;  // well above this small site's floor (~14 SYN/s)
  flood.start = SimTime::minutes(4);
  flood.duration = SimTime::minutes(5);
  util::Rng flood_rng(13);
  trace::AttackRenderConfig attack_cfg;
  attack_cfg.attacker_hosts = {7};
  packets = trace::merge_packets(
      std::move(packets),
      trace::render_attack(attack::generate_flood_times(flood, flood_rng),
                           attack_cfg));

  sim::StubNetworkParams net_params;
  net_params.stub_prefix = render_cfg.stub_prefix;
  net_params.num_hosts = 2;  // endpoints live in the trace, not the sim
  sim::StubNetworkSim network(net_params);
  network.set_uplink_sink();

  std::vector<core::AlarmEvent> alarms;
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults(),
                          [&](const core::AlarmEvent& ev) {
                            alarms.push_back(ev);
                          });
  for (const trace::TimedPacket& tp : packets) {
    network.replay_at_router(tp.at, tp.packet);
  }
  network.run_until(spec.duration);

  ASSERT_TRUE(agent.ever_alarmed());
  const std::int64_t onset_period =
      flood.start / core::SynDogParams{}.observation_period;
  EXPECT_GE(agent.first_alarm_period(), onset_period);
  EXPECT_LE(agent.first_alarm_period(), onset_period + 10);

  // No alarm before the flood: every pre-onset report is quiet.
  for (const core::PeriodReport& r : agent.history()) {
    if (r.period_index < onset_period) {
      EXPECT_FALSE(r.alarm) << "false alarm at period " << r.period_index;
    }
  }

  // Localization: the flooding slave's MAC tops the suspect list.
  ASSERT_FALSE(alarms.empty());
  ASSERT_FALSE(alarms.front().suspects.empty());
  EXPECT_EQ(alarms.front().suspects.front().mac,
            net::MacAddress::for_host(7));
  EXPECT_GT(alarms.front().suspects.front().spoofed_syns, 100u);
}

TEST(IntegrationTest, LiveSimulationDetectsFloodAmongLegitimateTraffic) {
  // Fully simulated endpoints: hosts connect through the cloud while a
  // compromised host floods an external victim.
  sim::StubNetworkParams params;
  params.num_hosts = 20;
  params.cloud.no_answer_probability = 0.03;
  sim::StubNetworkSim network(params);

  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());

  // Legitimate background: ~6 connections/s for 8 minutes.
  util::Rng rng(17);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < 8 * 60.0) {
    t += rng.exponential_mean(1.0 / 6.0);
    starts.push_back(SimTime::from_seconds(t));
  }
  network.schedule_outbound_background(starts);

  // Flood from host 13 starting at minute 3.
  attack::FloodSpec flood;
  flood.rate = 40.0;
  flood.start = SimTime::minutes(3);
  flood.duration = SimTime::minutes(5);
  util::Rng flood_rng(19);
  network.launch_flood(13, attack::generate_flood_times(flood, flood_rng),
                       net::Ipv4Address(198, 51, 100, 10), 80,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));

  network.run_until(SimTime::minutes(8));

  ASSERT_TRUE(agent.ever_alarmed());
  const std::int64_t onset_period =
      flood.start / core::SynDogParams{}.observation_period;
  EXPECT_GE(agent.first_alarm_period(), onset_period);
  const auto suspects = agent.locator().suspects();
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects.front().mac, net::MacAddress::for_host(13));

  // Legitimate connections kept completing during the flood (SYN-dog is
  // passive; the paper: "does not undermine end-to-end TCP performance").
  std::uint64_t established = 0;
  for (std::uint32_t h = 1; h <= params.num_hosts; ++h) {
    established += network.host(h).stats().established_as_client;
  }
  EXPECT_GT(established, starts.size() * 9 / 10);
}

TEST(IntegrationTest, CleanLiveSimulationNeverAlarms) {
  sim::StubNetworkParams params;
  params.num_hosts = 10;
  params.cloud.no_answer_probability = 0.05;
  sim::StubNetworkSim network(params);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());

  util::Rng rng(23);
  std::vector<SimTime> out_starts;
  std::vector<SimTime> in_starts;
  double t = 0.0;
  while (t < 6 * 60.0) {
    t += rng.exponential_mean(0.2);
    out_starts.push_back(SimTime::from_seconds(t));
    if (rng.bernoulli(0.5)) in_starts.push_back(SimTime::from_seconds(t));
  }
  network.make_servers(80);
  network.schedule_outbound_background(out_starts);
  network.schedule_inbound_background(in_starts);
  network.run_until(SimTime::minutes(6));

  EXPECT_FALSE(agent.ever_alarmed());
  EXPECT_GE(agent.history().size(), 17u);
  for (const core::PeriodReport& r : agent.history()) {
    EXPECT_LT(r.y, 0.5) << "period " << r.period_index;
  }
}

TEST(IntegrationTest, PcapRoundTripPreservesSnifferCounts) {
  // trace -> pcap file -> frames -> fast classifier == trace totals.
  const trace::SiteSpec spec = small_site();
  const trace::ConnectionTrace background =
      trace::generate_site_trace(spec, 29);
  const std::vector<trace::TimedPacket> packets =
      trace::render_trace(background, trace::RenderConfig{});

  std::stringstream file;
  pcap::Writer writer(file);
  for (const trace::TimedPacket& tp : packets) {
    writer.write(tp.at, net::encode_frame(tp.packet));
  }

  pcap::Reader reader(file);
  core::Sniffer out_sniffer(core::SnifferRole::kOutbound);
  core::Sniffer in_sniffer(core::SnifferRole::kInbound);
  while (const auto rec = reader.next()) {
    out_sniffer.on_frame(rec->data);
    in_sniffer.on_frame(rec->data);
  }
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(out_sniffer.lifetime_count(), background.total_syns());
  EXPECT_EQ(in_sniffer.lifetime_count(), background.total_syn_acks());
}

TEST(IntegrationTest, IngressFilteringStopsTheFloodAfterAlarm) {
  // §4.2.3: once SYN-dog alarms, the router can trigger ingress filtering
  // and identify the station by MAC. Wire the alarm callback to do both.
  sim::StubNetworkParams params;
  params.num_hosts = 5;
  sim::StubNetworkSim network(params);

  core::SynDogAgent agent(
      network.router(), network.scheduler(),
      core::SynDogParams::paper_defaults(),
      [&](const core::AlarmEvent&) {
        network.router().set_ingress_filtering(true);
      });

  attack::FloodSpec flood;
  flood.rate = 80.0;
  flood.start = SimTime::minutes(1);
  flood.duration = SimTime::minutes(6);
  util::Rng rng(31);
  network.launch_flood(4, attack::generate_flood_times(flood, rng),
                       net::Ipv4Address(198, 51, 100, 10), 80,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));
  network.run_until(SimTime::minutes(7));

  ASSERT_TRUE(agent.ever_alarmed());
  EXPECT_TRUE(network.router().ingress_filtering());
  // After the alarm the filter keeps dropping the spoofed flood.
  EXPECT_GT(network.router().stats().dropped_ingress_filter, 1000u);
}

}  // namespace
}  // namespace syndog
