#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "syndog/stats/sliding.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::stats {
namespace {

TEST(SlidingWindowTest, FillsThenSlides) {
  SlidingWindow w(3);
  EXPECT_EQ(w.size(), 0u);
  w.add(1.0);
  w.add(2.0);
  EXPECT_FALSE(w.full());
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.back(), 10.0);
}

TEST(SlidingWindowTest, MinMaxTrackEvictions) {
  SlidingWindow w(3);
  w.add(5.0);
  w.add(1.0);
  w.add(9.0);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  w.add(4.0);  // evicts 5
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  w.add(4.5);  // evicts 1 -> min becomes 4
  EXPECT_DOUBLE_EQ(w.min(), 4.0);
  w.add(2.0);  // evicts 9 -> max becomes 4.5
  EXPECT_DOUBLE_EQ(w.max(), 4.5);
}

TEST(SlidingWindowTest, MatchesBruteForceOnRandomStream) {
  util::Rng rng(31);
  SlidingWindow w(16);
  std::deque<double> reference;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(0.0, 10.0);
    w.add(x);
    reference.push_back(x);
    if (reference.size() > 16) reference.pop_front();

    double sum = 0.0;
    double mn = reference.front();
    double mx = reference.front();
    for (const double v : reference) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double mean = sum / static_cast<double>(reference.size());
    double var = 0.0;
    for (const double v : reference) var += (v - mean) * (v - mean);
    var /= static_cast<double>(reference.size());

    ASSERT_NEAR(w.mean(), mean, 1e-9);
    if (reference.size() >= 2) {
      ASSERT_NEAR(w.variance(), var, 1e-6);
    }
    ASSERT_DOUBLE_EQ(w.min(), mn);
    ASSERT_DOUBLE_EQ(w.max(), mx);
  }
}

TEST(SlidingWindowTest, EmptyAndClearBehaviour) {
  SlidingWindow w(4);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.min(), 0.0);
  EXPECT_THROW((void)w.front(), std::out_of_range);
  w.add(7.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_THROW((void)w.back(), std::out_of_range);
  EXPECT_THROW(SlidingWindow{0}, std::invalid_argument);
}

TEST(SlidingWindowTest, DuplicateValuesEvictCorrectly) {
  // Monotonic-deque implementations commonly break on duplicates.
  SlidingWindow w(2);
  w.add(5.0);
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.min(), 5.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
  w.add(3.0);  // evicts one 5; the other remains
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.0);
  w.add(4.0);  // evicts the second 5
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
}

}  // namespace
}  // namespace syndog::stats
