// Tests for the numerical ARL design tool and the cross-agent alarm
// aggregator.
#include <gtest/gtest.h>

#include <cmath>

#include "syndog/attack/campaign.hpp"
#include "syndog/core/aggregator.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/detect/arl.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/sim/multistub.hpp"
#include "syndog/util/rng.hpp"

namespace syndog {
namespace {

using util::SimTime;

// --- ARL (Brook & Evans) -------------------------------------------------------

/// Simulation reference for the Markov-chain ARL.
double simulated_arl(double mean, double stddev, double a, double n,
                     int runs, std::uint64_t seed) {
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    util::Rng rng(seed + static_cast<std::uint64_t>(r));
    detect::NonParametricCusum cusum({a, n});
    std::int64_t steps = 0;
    while (!cusum.update(rng.normal(mean, stddev)).alarm) {
      ++steps;
      if (steps > 10'000'000) break;
    }
    total += static_cast<double>(steps + 1);
  }
  return total / runs;
}

TEST(ArlTest, MatchesSimulationInFalseAlarmRegime) {
  // Pre-change regime: mean below the offset; ARL0 is large.
  detect::ArlSpec spec;
  spec.mean = 0.05;
  spec.stddev = 0.25;
  spec.offset = 0.35;
  spec.threshold = 0.5;
  const double numeric = detect::cusum_average_run_length(spec);
  const double simulated = simulated_arl(0.05, 0.25, 0.35, 0.5, 300, 7);
  EXPECT_NEAR(numeric, simulated, simulated * 0.15);
  EXPECT_GT(numeric, 50.0);
}

TEST(ArlTest, MatchesSimulationInDetectionRegime) {
  // Post-change: mean above the offset; ARL1 is the detection delay.
  detect::ArlSpec spec;
  spec.mean = 0.7;
  spec.stddev = 0.1;
  spec.offset = 0.35;
  spec.threshold = 1.05;
  const double numeric = detect::cusum_average_run_length(spec);
  const double simulated = simulated_arl(0.7, 0.1, 0.35, 1.05, 500, 9);
  EXPECT_NEAR(numeric, simulated, simulated * 0.1);
  // And both should sit near the paper's design point N/(h-a) = 3.
  EXPECT_NEAR(numeric, 3.0, 1.2);
}

TEST(ArlTest, Arl0GrowsExponentiallyWithThreshold) {
  // The numerical method must reproduce Eq. (5)'s scaling.
  detect::ArlSpec spec;
  spec.mean = 0.05;
  spec.stddev = 0.25;
  spec.offset = 0.35;
  double prev = 0.0;
  double prev_ratio = 0.0;
  for (const double n : {0.3, 0.5, 0.7, 0.9}) {
    spec.threshold = n;
    const double arl = detect::cusum_average_run_length(spec);
    if (prev > 0.0) {
      const double ratio = arl / prev;
      EXPECT_GT(ratio, 2.0) << n;
      if (prev_ratio > 0.0) {
        // Roughly constant multiplicative growth per step.
        EXPECT_NEAR(ratio, prev_ratio, prev_ratio * 0.5) << n;
      }
      prev_ratio = ratio;
    }
    prev = arl;
  }
}

TEST(ArlTest, ResolutionConverges) {
  detect::ArlSpec coarse;
  coarse.mean = 0.1;
  coarse.stddev = 0.2;
  coarse.threshold = 0.8;
  coarse.states = 50;
  detect::ArlSpec fine = coarse;
  fine.states = 400;
  const double a = detect::cusum_average_run_length(coarse);
  const double b = detect::cusum_average_run_length(fine);
  EXPECT_NEAR(a, b, b * 0.1);
}

TEST(ArlTest, Validation) {
  detect::ArlSpec bad;
  bad.stddev = 0.0;
  EXPECT_THROW((void)detect::cusum_average_run_length(bad),
               std::invalid_argument);
  bad = detect::ArlSpec{};
  bad.states = 2;
  EXPECT_THROW((void)detect::cusum_average_run_length(bad),
               std::invalid_argument);
}

// --- ARL with the scaled-Poisson kernel ----------------------------------------

/// Simulation reference: Xn = Poisson(rate) * scale.
double simulated_poisson_arl(double rate, double scale, double a, double n,
                             int runs, std::uint64_t seed) {
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    util::Rng rng(seed + static_cast<std::uint64_t>(r));
    detect::NonParametricCusum cusum({a, n});
    std::int64_t steps = 0;
    while (!cusum
                .update(static_cast<double>(rng.poisson(rate)) * scale)
                .alarm) {
      ++steps;
      if (steps > 10'000'000) break;
    }
    total += static_cast<double>(steps + 1);
  }
  return total / runs;
}

TEST(ArlTest, PoissonKernelMatchesSimulation) {
  // Small-site regime: ~0.6 unanswered SYNs per period at K-bar = 12.
  detect::PoissonArlSpec spec;
  spec.rate = 0.6;
  spec.scale = 1.0 / 12.0;
  spec.offset = 0.10;
  spec.threshold = 0.25;
  spec.states = 400;
  const double numeric = detect::cusum_average_run_length(spec);
  const double simulated =
      simulated_poisson_arl(0.6, 1.0 / 12.0, 0.10, 0.25, 400, 11);
  EXPECT_NEAR(numeric, simulated, simulated * 0.15);
}

TEST(ArlTest, PoissonKernelConvergesToGaussianAtLargeRate) {
  // With many counts per period the scaled Poisson is near-Gaussian and
  // the two kernels must agree.
  // Moderate-ARL regime (a few hundred periods): deep-tail regimes
  // amplify even the residual skew exponentially, so agreement is only
  // meaningful where the kernels' bulk dominates.
  detect::PoissonArlSpec poisson;
  poisson.rate = 400.0;
  poisson.scale = 0.005;  // mean 2.0, stddev 0.1
  poisson.offset = 2.1;
  poisson.threshold = 0.25;
  poisson.states = 400;
  detect::ArlSpec gauss;
  gauss.mean = 2.0;
  gauss.stddev = 0.1;
  gauss.offset = 2.1;
  gauss.threshold = 0.25;
  gauss.states = 400;
  const double a = detect::cusum_average_run_length(poisson);
  const double b = detect::cusum_average_run_length(gauss);
  EXPECT_NEAR(a, b, b * 0.25);
}

TEST(ArlTest, PoissonTailBeatsMatchedGaussian) {
  // Matched first two moments, but the discrete upper tail trips the
  // CUSUM far more often: the Gaussian kernel overestimates the ARL by
  // a large factor (this is the fleet-telemetry effect; EXPERIMENTS.md).
  // One unanswered SYN per period at K-bar = 20 (the fleet campaign's
  // typical site): the threshold sits ~8 sigma out, where the Gaussian
  // tail is empty but the Poisson atoms are not.
  detect::PoissonArlSpec poisson;
  poisson.rate = 1.0;
  poisson.scale = 0.05;  // mean 0.05, stddev 0.05
  poisson.offset = 0.10;
  poisson.threshold = 0.25;
  poisson.states = 400;
  detect::ArlSpec gauss;
  gauss.mean = 0.05;
  gauss.stddev = 0.05;
  gauss.offset = 0.10;
  gauss.threshold = 0.25;
  gauss.states = 400;
  const double discrete = detect::cusum_average_run_length(poisson);
  const double gaussian = detect::cusum_average_run_length(gauss);
  EXPECT_GT(gaussian, 5.0 * discrete);
}

TEST(ArlTest, PoissonValidation) {
  detect::PoissonArlSpec bad;
  bad.rate = 0.0;
  EXPECT_THROW((void)detect::cusum_average_run_length(bad),
               std::invalid_argument);
  bad = detect::PoissonArlSpec{};
  bad.scale = -1.0;
  EXPECT_THROW((void)detect::cusum_average_run_length(bad),
               std::invalid_argument);
}

// --- AlarmAggregator ---------------------------------------------------------------

TEST(AggregatorTest, EstimatesPerStubAndAggregateRates) {
  core::AlarmAggregator agg(SimTime::seconds(20), /*assumed_c=*/0.05);
  core::AlarmEvent ev;
  ev.at = SimTime::minutes(5);
  ev.report.delta = 1000.0 + 0.05 * 2000.0;  // flood 50 SYN/s + normal gap
  ev.report.k_estimate = 2000.0;
  agg.report("stub-a", ev);
  EXPECT_EQ(agg.alarming_stubs(), 1u);
  EXPECT_NEAR(agg.snapshot()[0].estimated_rate, 50.0, 1e-9);

  core::AlarmEvent small;
  small.at = SimTime::minutes(5);
  small.report.delta = 400.0 + 0.05 * 2000.0;
  small.report.k_estimate = 2000.0;
  agg.report("stub-b", small);
  EXPECT_NEAR(agg.estimated_aggregate_rate(), 70.0, 1e-9);
  EXPECT_EQ(agg.snapshot()[0].stub_name, "stub-a");  // largest first

  agg.clear("stub-a");
  EXPECT_EQ(agg.alarming_stubs(), 1u);
  EXPECT_NEAR(agg.estimated_aggregate_rate(), 20.0, 1e-9);
}

TEST(AggregatorTest, EndToEndAcrossAMultiStubCampaign) {
  sim::MultiStubParams params;
  params.stub_count = 3;
  params.hosts_per_stub = 8;
  sim::MultiStubSim net(params);

  core::AlarmAggregator agg(core::SynDogParams{}.observation_period);
  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  for (int s = 0; s < 3; ++s) {
    const std::string name = "stub-" + std::to_string(s);
    agents.push_back(std::make_unique<core::SynDogAgent>(
        net.router(s), net.scheduler(),
        core::SynDogParams::paper_defaults(),
        [&agg, name](const core::AlarmEvent& ev) { agg.report(name, ev); }));
  }

  attack::CampaignSpec campaign;
  campaign.aggregate_rate = 150.0;  // 50 SYN/s per stub
  campaign.stub_networks = 3;
  campaign.start = SimTime::minutes(1);
  campaign.duration = SimTime::minutes(4);
  const attack::Campaign c(campaign, 5);
  util::Rng rng(6);
  for (int s = 0; s < 3; ++s) {
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < 5 * 60.0) {
      t += rng.exponential_mean(0.25);
      starts.push_back(SimTime::from_seconds(t));
    }
    net.schedule_outbound_background(s, starts);
    net.launch_flood(s, c.slaves_in_stub(s)[0].host_index %
                            params.hosts_per_stub + 1,
                     c.flood_times_in_stub(s),
                     net::Ipv4Address(198, 51, 100, 10), 80,
                     *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  net.run_until(SimTime::minutes(5));

  EXPECT_EQ(agg.alarming_stubs(), 3u);
  // Aggregate estimate within ~35% of the true campaign rate (the first
  // alarming period is partially flooded, biasing estimates low).
  EXPECT_NEAR(agg.estimated_aggregate_rate(), 150.0, 55.0);
  for (const auto& alarm : agg.snapshot()) {
    EXPECT_FALSE(alarm.suspects.empty()) << alarm.stub_name;
    EXPECT_NEAR(alarm.estimated_rate, 50.0, 25.0) << alarm.stub_name;
  }
}

}  // namespace
}  // namespace syndog
