// Counting replacement of the global allocator, for proving hot paths
// allocation-free at runtime (the static twin is the hotpath.allocation
// lint rule; see `syndog_lint --explain hotpath.allocation`).
//
// Include this header in exactly ONE translation unit per test binary:
// it *defines* the replacement operator new/delete set, and replacement
// allocation functions must not be defined twice (nor declared inline,
// [replacement.functions]). Test binaries here are single-TU, so a plain
// #include is exactly once by construction.
//
// Usage:
//     warm_up();                       // grow arenas to steady state
//     syndog::testsupport::AllocGuard guard;
//     hot_loop();
//     EXPECT_EQ(guard.stop(), 0u);
//
// The default operator new[]/delete[] forward to these, so every heap
// allocation made by the binary is counted while the guard is live.
// noinline keeps the malloc/free calls opaque at call sites, where GCC
// would otherwise misreport them as mismatched new/free pairs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace syndog::testsupport {

namespace detail {
inline std::atomic<bool> g_count_allocs{false};
inline std::atomic<std::size_t> g_alloc_count{0};
}  // namespace detail

/// RAII window during which global heap allocations are counted.
/// Construction resets the counter and starts counting; stop() (or the
/// destructor) ends the window. Counting is idempotent and thread-safe,
/// but windows must not nest.
class AllocGuard {
 public:
  AllocGuard() {
    detail::g_alloc_count.store(0, std::memory_order_relaxed);
    detail::g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { detail::g_count_allocs.store(false, std::memory_order_relaxed); }
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Stops counting and returns the number of allocations observed —
  /// call before making assertions so the assertion machinery's own
  /// allocations are not counted.
  std::size_t stop() {
    detail::g_count_allocs.store(false, std::memory_order_relaxed);
    return detail::g_alloc_count.load(std::memory_order_relaxed);
  }
};

}  // namespace syndog::testsupport

[[gnu::noinline]] void* operator new(std::size_t size) {
  namespace d = syndog::testsupport::detail;
  if (d::g_count_allocs.load(std::memory_order_relaxed)) {
    d::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

[[gnu::noinline]] void* operator new(std::size_t size,
                                     const std::nothrow_t&) noexcept {
  namespace d = syndog::testsupport::detail;
  if (d::g_count_allocs.load(std::memory_order_relaxed)) {
    d::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  return std::malloc(size);
}

[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
[[gnu::noinline]] void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
