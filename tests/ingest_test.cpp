// Streaming capture-ingest pipeline tests: ring wraparound, backpressure
// accounting, damaged-capture handling, replay/manual-loop equivalence,
// and single-thread vs two-thread agreement (the threaded suite also runs
// under tsan in CI).
#include <gtest/gtest.h>

#include "support/alloc_guard.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/ingest/agent_demux.hpp"
#include "syndog/ingest/capture_source.hpp"
#include "syndog/ingest/flow_hash.hpp"
#include "syndog/ingest/frame_ring.hpp"
#include "syndog/ingest/pipeline.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/ingest/sharded.hpp"
#include "syndog/net/digest.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/metrics.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/pcap/pcapng.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::ingest {
namespace {

using util::SimTime;

net::Packet sample_packet(std::uint32_t host, bool syn_ack) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(host);
  spec.dst_mac = net::MacAddress::for_host(0);
  if (syn_ack) {
    spec.src_ip = net::Ipv4Address(192, 0, 2, 1);
    spec.dst_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
    spec.src_port = 80;
    spec.dst_port = static_cast<std::uint16_t>(30000 + host);
    return net::make_syn_ack(spec);
  }
  spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = static_cast<std::uint16_t>(30000 + host);
  spec.dst_port = 80;
  return net::make_syn(spec);
}

/// A wire-realistic capture: outbound SYNs and inbound SYN/ACKs with
/// increasing timestamps, `frames` records over `span`.
std::string make_capture(std::size_t frames, SimTime span,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  for (std::size_t i = 0; i < frames; ++i) {
    const auto at = SimTime::nanoseconds(
        static_cast<std::int64_t>(i) * span.ns() /
        static_cast<std::int64_t>(frames));
    const bool syn_ack = rng.uniform() < 0.5;
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    writer.write(at, net::encode_frame(sample_packet(host, syn_ack)));
  }
  writer.flush();
  return std::move(out).str();
}

// ---------------------------------------------------------------------
// FrameRing

TEST(FrameRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FrameRing(1).capacity(), 2u);
  EXPECT_EQ(FrameRing(5).capacity(), 8u);
  EXPECT_EQ(FrameRing(64).capacity(), 64u);
  EXPECT_THROW(FrameRing(0), std::invalid_argument);
}

TEST(FrameRingTest, WraparoundPreservesOrderAndContent) {
  FrameRing ring(4);
  std::uint32_t produced = 0;
  std::uint32_t consumed = 0;
  util::Rng rng(11);
  // Push/pop in randomized bursts so head/tail lap the array many times.
  while (consumed < 1000) {
    const auto burst = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    for (std::uint32_t i = 0; i < burst; ++i) {
      Frame* slot = ring.try_claim();
      if (slot == nullptr) break;
      slot->wire_bytes = produced;
      slot->at = SimTime::nanoseconds(produced);
      ++produced;
      ring.publish();
    }
    const auto drain = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    for (std::uint32_t i = 0; i < drain && !ring.empty(); ++i) {
      const std::span<const Frame> run = ring.readable();
      ASSERT_FALSE(run.empty());
      ASSERT_EQ(run.front().wire_bytes, consumed);
      ++consumed;
      ring.release(1);
    }
  }
  EXPECT_LE(ring.size(), ring.capacity());
}

TEST(FrameRingTest, SteadyStateProduceConsumeDoesNotAllocate) {
  // The ring's slot arena is sized once at construction; claiming,
  // publishing, reading, and releasing frames afterwards must never
  // touch the heap (the runtime twin of the hotpath.allocation lint
  // rule on frame_ring.hpp).
  FrameRing ring(64);
  std::uint32_t produced = 0;
  util::Rng rng(23);

  auto churn = [&](std::uint32_t rounds) {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      const auto burst = static_cast<std::uint32_t>(rng.uniform_int(1, 48));
      for (std::uint32_t i = 0; i < burst; ++i) {
        Frame* slot = ring.try_claim();
        if (slot == nullptr) break;
        slot->wire_bytes = produced;
        slot->at = SimTime::nanoseconds(produced);
        ++produced;
        ring.publish();
      }
      while (!ring.empty()) {
        const std::span<const Frame> run = ring.readable();
        ring.release(run.size());
      }
    }
  };

  churn(16);  // warm-up: every slot written at least once
  testsupport::AllocGuard guard;
  churn(512);
  EXPECT_EQ(guard.stop(), 0u)
      << "steady-state ring traffic must not touch the heap";
  EXPECT_GT(produced, 1000u);
}

TEST(FrameRingTest, FullRingRefusesClaim) {
  FrameRing ring(2);
  ASSERT_NE(ring.try_claim(), nullptr);
  ring.publish();
  ASSERT_NE(ring.try_claim(), nullptr);
  ring.publish();
  EXPECT_EQ(ring.try_claim(), nullptr);
  ring.release(1);
  EXPECT_NE(ring.try_claim(), nullptr);
}

TEST(FrameRingTest, OverReleaseThrows) {
  FrameRing ring(4);
  EXPECT_THROW(ring.release(1), std::logic_error);
}

TEST(FrameRingTest, CapacityErrorMessageExplainsConstraint) {
  try {
    FrameRing ring(0);
    FAIL() << "zero capacity must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "SlotRing: capacity must be positive (a zero-capacity "
                 "ring could never publish a slot)");
  }
}

TEST(FrameRingTest, ReleaseOverflowMessageAndPartialOverflow) {
  FrameRing ring(4);
  ASSERT_NE(ring.try_claim(), nullptr);
  ring.publish();
  ASSERT_NE(ring.try_claim(), nullptr);
  ring.publish();
  // Releasing more than the published count must throw without moving
  // the tail cursor: the two published slots stay readable afterwards.
  try {
    ring.release(3);
    FAIL() << "over-release must throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(),
                 "SlotRing: releasing more slots than are readable "
                 "(release(n) must not exceed the published count)");
  }
  EXPECT_EQ(ring.size(), 2u);
  ring.release(2);
  EXPECT_TRUE(ring.empty());
  // The boundary is exact: an empty ring rejects release(1) but a
  // same-size release succeeds.
  EXPECT_THROW(ring.release(1), std::logic_error);
}

// ---------------------------------------------------------------------
// Symmetric flow hash

TEST(FlowHashTest, SymmetricUnderDirectionReversal) {
  util::Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const auto src = static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max()));
    const auto dst = static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max()));
    const auto sport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const auto dport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const auto proto = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(flow_hash(src, sport, dst, dport, proto),
              flow_hash(dst, dport, src, sport, proto));
  }
}

TEST(FlowHashTest, SynAndSynAckOfOneFlowNeverSplitShards) {
  // A flow's SYN and the SYN-ACK coming back swap src/dst; for every
  // shard count the two must land on the same ring, or a consumer
  // thread would see half a flow.
  util::Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(1);
    spec.dst_mac = net::MacAddress::for_host(2);
    spec.src_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30)));
    spec.dst_ip = net::Ipv4Address(
        static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30)));
    spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    spec.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const net::ByteBuffer syn = net::encode_frame(net::make_syn(spec));
    std::swap(spec.src_ip, spec.dst_ip);
    std::swap(spec.src_port, spec.dst_port);
    const net::ByteBuffer syn_ack =
        net::encode_frame(net::make_syn_ack(spec));

    net::FlowDigest d_syn;
    net::FlowDigest d_syn_ack;
    ASSERT_TRUE(net::extract_flow_digest(syn, d_syn));
    ASSERT_TRUE(net::extract_flow_digest(syn_ack, d_syn_ack));
    const std::uint64_t h_syn = flow_hash(d_syn);
    const std::uint64_t h_syn_ack = flow_hash(d_syn_ack);
    EXPECT_EQ(h_syn, h_syn_ack);
    for (std::size_t shards = 1; shards <= 8; ++shards) {
      EXPECT_EQ(shard_of(h_syn, shards), shard_of(h_syn_ack, shards));
      EXPECT_LT(shard_of(h_syn, shards), shards);
    }
  }
}

TEST(FlowHashTest, DistinctFlowsSpreadAcrossShards) {
  // Not a distribution guarantee, but the mixer must not collapse the
  // regular address patterns synthetic traces use onto one shard.
  std::array<int, 4> load{};
  for (std::uint32_t host = 1; host <= 64; ++host) {
    const std::uint64_t h = flow_hash(
        0x0a010000U | host, static_cast<std::uint16_t>(30000 + host),
        0xc0000201U, 80, 6);
    ++load[shard_of(h, load.size())];
  }
  for (const int l : load) EXPECT_GT(l, 0) << "a shard got no flows";
}

// ---------------------------------------------------------------------
// CaptureSource

TEST(CaptureSourceTest, SniffsClassicPcap) {
  const std::string capture = make_capture(3, SimTime::seconds(1), 1);
  std::istringstream in(capture, std::ios::binary);
  CaptureSource source(in);
  EXPECT_EQ(source.format(), CaptureFormat::kPcap);
  pcap::Record rec;
  std::size_t n = 0;
  while (source.next(rec)) ++n;
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(source.end_state(), pcap::ReadEnd::kEof);
}

TEST(CaptureSourceTest, SniffsPcapng) {
  std::stringstream buf;
  pcap::PcapngWriter writer(buf);
  writer.write(SimTime::seconds(1),
               net::encode_frame(sample_packet(1, false)));
  CaptureSource source(buf);
  EXPECT_EQ(source.format(), CaptureFormat::kPcapng);
  pcap::Record rec;
  EXPECT_TRUE(source.next(rec));
  EXPECT_FALSE(source.next(rec));
  EXPECT_EQ(source.end_state(), pcap::ReadEnd::kEof);
}

TEST(CaptureSourceTest, RejectsGarbage) {
  std::istringstream in("not a capture at all", std::ios::binary);
  EXPECT_THROW(CaptureSource source(in), std::runtime_error);
}

// ---------------------------------------------------------------------
// CapturePipeline

/// Counts frames; accepts at most `accept_limit` per offer.
class CountingSink final : public FrameSink {
 public:
  explicit CountingSink(std::size_t accept_limit = SIZE_MAX)
      : accept_limit_(accept_limit) {}
  std::size_t on_batch(std::span<const Frame> batch) override {
    const std::size_t take = std::min(batch.size(), accept_limit_);
    for (const Frame& f : batch.first(take)) {
      total_ += 1;
      bytes_ += f.captured_bytes;
      last_at_ = f.at;
    }
    ++offers_;
    max_batch_ = std::max(max_batch_, batch.size());
    return take;
  }
  std::uint64_t total_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t offers_ = 0;
  std::size_t max_batch_ = 0;
  SimTime last_at_;

 private:
  std::size_t accept_limit_;
};

TEST(PipelineTest, DeliversEveryFrameInOrder) {
  const std::string capture = make_capture(500, SimTime::seconds(10), 2);
  std::istringstream in(capture, std::ios::binary);
  PipelineConfig cfg;
  cfg.ring_capacity = 16;  // force many fill/drain cycles and wraps
  cfg.batch_size = 5;
  CapturePipeline pipeline(in, cfg);
  CountingSink sink;
  pipeline.add_sink("count", sink);
  pipeline.run();
  EXPECT_EQ(sink.total_, 500u);
  EXPECT_EQ(pipeline.stats().frames, 500u);
  EXPECT_EQ(pipeline.stats().records, 500u);
  EXPECT_EQ(pipeline.stats().bytes, sink.bytes_);
  EXPECT_LE(sink.max_batch_, 5u);
  EXPECT_EQ(pipeline.delivered(0), 500u);
  EXPECT_EQ(pipeline.dropped(0), 0u);
  EXPECT_FALSE(pipeline.stats().truncated);
}

TEST(PipelineTest, BackpressureAccountingIsExact) {
  // Property: for randomized ring/batch/acceptance shapes, every frame is
  // either delivered or dropped — never both, never lost.
  util::Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const auto frames =
        static_cast<std::size_t>(rng.uniform_int(50, 400));
    const std::string capture =
        make_capture(frames, SimTime::seconds(5),
                     static_cast<std::uint64_t>(trial) + 100);
    std::istringstream in(capture, std::ios::binary);
    PipelineConfig cfg;
    cfg.ring_capacity = static_cast<std::size_t>(rng.uniform_int(2, 64));
    cfg.batch_size = static_cast<std::size_t>(rng.uniform_int(1, 17));
    CapturePipeline pipeline(in, cfg);

    CountingSink blocking(
        static_cast<std::size_t>(rng.uniform_int(1, 8)));
    CountingSink lossy(static_cast<std::size_t>(rng.uniform_int(1, 4)));
    pipeline.add_sink("blocking", blocking, BackpressurePolicy::kBlock);
    pipeline.add_sink("lossy", lossy, BackpressurePolicy::kDropNewest);
    pipeline.run();

    // kBlock: everything arrives, re-offered as often as needed.
    EXPECT_EQ(blocking.total_, frames) << "trial " << trial;
    EXPECT_EQ(pipeline.delivered(0), frames);
    EXPECT_EQ(pipeline.dropped(0), 0u);
    // kDropNewest: exact conservation of delivered + dropped.
    EXPECT_EQ(lossy.total_, pipeline.delivered(1)) << "trial " << trial;
    EXPECT_EQ(pipeline.delivered(1) + pipeline.dropped(1), frames)
        << "trial " << trial;
  }
}

TEST(PipelineTest, StalledBlockingSinkThrows) {
  const std::string capture = make_capture(10, SimTime::seconds(1), 3);
  std::istringstream in(capture, std::ios::binary);
  CapturePipeline pipeline(in, {});
  CountingSink stalled(0);  // never accepts anything
  pipeline.add_sink("stalled", stalled, BackpressurePolicy::kBlock);
  EXPECT_THROW(pipeline.run(), std::runtime_error);
}

TEST(PipelineTest, TruncatedCaptureIsCountedNotSilent) {
  std::string capture = make_capture(20, SimTime::seconds(2), 4);
  capture.resize(capture.size() - 7);  // tear the last record
  std::istringstream in(capture, std::ios::binary);
  CapturePipeline pipeline(in, {});
  CountingSink sink;
  pipeline.add_sink("count", sink);
  obs::Registry registry;
  pipeline.attach_observer(registry);
  pipeline.run();
  EXPECT_EQ(sink.total_, 19u);
  EXPECT_TRUE(pipeline.stats().truncated);
  EXPECT_EQ(pipeline.end_state(), pcap::ReadEnd::kTruncated);
  EXPECT_EQ(registry.counter("ingest.truncated_captures").value(), 1u);
  EXPECT_EQ(registry.counter("ingest.frames").value(), 19u);
  EXPECT_EQ(registry.counter("ingest.sink.count.delivered").value(), 19u);
}

TEST(PipelineTest, GarbageTailStopsWithTruncation) {
  // A valid capture followed by non-pcap bytes: the tail must terminate
  // the stream as damage, not crash or spin.
  std::string capture = make_capture(5, SimTime::seconds(1), 5);
  capture += "GARBAGE GARBAGE";  // 15 bytes: a torn record header
  std::istringstream in(capture, std::ios::binary);
  CapturePipeline pipeline(in, {});
  CountingSink sink;
  pipeline.add_sink("count", sink);
  pipeline.run();
  EXPECT_EQ(sink.total_, 5u);
  EXPECT_TRUE(pipeline.stats().truncated);
}

TEST(PipelineTest, SkipsUndecodableRecords) {
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  writer.write(SimTime::seconds(1),
               net::encode_frame(sample_packet(1, false)));
  const net::ByteBuffer junk(30, 0xEE);  // not an Ethernet/IPv4 frame
  writer.write(SimTime::seconds(2), junk);
  writer.write(SimTime::seconds(3),
               net::encode_frame(sample_packet(2, true)));
  const std::string capture = std::move(out).str();

  std::istringstream in(capture, std::ios::binary);
  CapturePipeline pipeline(in, {});
  CountingSink sink;
  pipeline.add_sink("count", sink);
  pipeline.run();
  EXPECT_EQ(pipeline.stats().records, 3u);
  EXPECT_EQ(pipeline.stats().frames, 2u);
  EXPECT_EQ(pipeline.stats().decode_failures, 1u);
  EXPECT_EQ(sink.total_, 2u);
}

// ---------------------------------------------------------------------
// ReplayEngine + AgentDemux vs the manual whole-file loop

struct ManualResult {
  std::vector<std::int64_t> syns;
  std::vector<std::int64_t> syn_acks;
  std::vector<bool> alarms;
};

/// The examples/pcap_sniffer accounting, verbatim: whole file in memory,
/// periods closed by timestamp comparison.
ManualResult manual_loop(const std::string& capture,
                         const core::SynDogParams& params) {
  ManualResult result;
  std::istringstream in(capture, std::ios::binary);
  pcap::Reader reader(in);
  const net::Ipv4Prefix stub = *net::Ipv4Prefix::parse("10.1.0.0/16");
  core::Sniffer outbound(core::SnifferRole::kOutbound);
  core::Sniffer inbound(core::SnifferRole::kInbound);
  core::SynDog dog(params);
  const SimTime t0 = params.observation_period;
  SimTime period_end = t0;
  const auto close_period = [&] {
    const core::PeriodReport r = dog.observe_period(
        static_cast<std::int64_t>(outbound.harvest()),
        static_cast<std::int64_t>(inbound.harvest()));
    result.syns.push_back(r.syn_count);
    result.syn_acks.push_back(r.syn_ack_count);
    result.alarms.push_back(r.alarm);
  };
  while (const auto rec = reader.next()) {
    while (rec->timestamp >= period_end) {
      close_period();
      period_end += t0;
    }
    const auto pkt = net::decode_frame(rec->data);
    if (!pkt) continue;
    const bool outbound_dir =
        stub.contains(pkt->ip.src) || !stub.contains(pkt->ip.dst);
    if (outbound_dir) {
      outbound.on_frame(rec->data);
    } else {
      inbound.on_frame(rec->data);
    }
  }
  close_period();
  return result;
}

TEST(ReplayEquivalenceTest, DemuxMatchesManualLoopPerPeriod) {
  // 2000 frames over 130 s -> 6 full periods plus a partial seventh.
  const std::string capture =
      make_capture(2000, SimTime::seconds(130), 77);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  const ManualResult manual = manual_loop(capture, params);

  std::istringstream in(capture, std::ios::binary);
  ReplayEngine engine(in, {});
  AgentDemux demux(engine.scheduler(),
                   {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
                   params);
  engine.add_sink(demux);
  engine.run();
  demux.close_final_period();

  const auto& history = demux.agent(0).history();
  ASSERT_EQ(history.size(), manual.syns.size());
  ASSERT_EQ(history.size(), 7u);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].syn_count, manual.syns[i]) << "period " << i;
    EXPECT_EQ(history[i].syn_ack_count, manual.syn_acks[i])
        << "period " << i;
    EXPECT_EQ(history[i].alarm, manual.alarms[i]) << "period " << i;
  }
}

TEST(ReplayEngineTest, AutoOriginRebasesAbsoluteTimestamps) {
  // Same frames, stamped as if captured in 2024: the engine must rebase
  // to the first frame instead of spinning years of period timers.
  const std::int64_t epoch_ns = 1'700'000'000LL * 1'000'000'000LL;
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  for (int i = 0; i < 10; ++i) {
    writer.write(SimTime::nanoseconds(epoch_ns + i * 1'000'000'000LL),
                 net::encode_frame(sample_packet(
                     static_cast<std::uint32_t>(i + 1), false)));
  }
  const std::string capture = std::move(out).str();
  std::istringstream in(capture, std::ios::binary);
  ReplayEngine engine(in, {});
  engine.run();
  EXPECT_EQ(engine.epoch().ns(), epoch_ns);
  EXPECT_EQ(engine.last_frame_at().ns(), 9'000'000'000LL);
  EXPECT_EQ(engine.frames_replayed(), 10u);
}

TEST(ReplayEngineTest, MultiStubDemuxRoutesBothDirections) {
  // Stub A floods an external victim; stub B only answers handshakes.
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  std::int64_t ns = 0;
  for (int i = 0; i < 400; ++i) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(1);
    spec.dst_mac = net::MacAddress::for_host(0);
    spec.src_ip = net::Ipv4Address(10, 1, 0, 5);   // stub A
    spec.dst_ip = net::Ipv4Address(192, 0, 2, 9);  // external
    spec.src_port = 1234;
    spec.dst_port = 80;
    writer.write(SimTime::nanoseconds(ns += 100'000'000),
                 net::encode_frame(net::make_syn(spec)));
    if (i % 4 == 0) {
      net::TcpPacketSpec reply;
      reply.src_mac = net::MacAddress::for_host(0);
      reply.dst_mac = net::MacAddress::for_host(2);
      reply.src_ip = net::Ipv4Address(192, 0, 2, 9);
      reply.dst_ip = net::Ipv4Address(10, 2, 0, 7);  // stub B
      reply.src_port = 80;
      reply.dst_port = 999;
      writer.write(SimTime::nanoseconds(ns),
                   net::encode_frame(net::make_syn_ack(reply)));
    }
  }
  const std::string capture = std::move(out).str();

  std::istringstream in(capture, std::ios::binary);
  ReplayEngine engine(in, {});
  AgentDemux demux(engine.scheduler(),
                   {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "a"},
                    {*net::Ipv4Prefix::parse("10.2.0.0/16"), "b"}},
                   core::SynDogParams::paper_defaults());
  engine.add_sink(demux);
  engine.run();
  demux.close_final_period();

  // Stub A saw a one-sided SYN flood: its CUSUM must alarm. Stub B saw
  // only inbound SYN/ACKs: quiet.
  EXPECT_FALSE(demux.alarms(0).empty());
  EXPECT_TRUE(demux.alarms(1).empty());
  std::int64_t a_syns = 0;
  for (const auto& r : demux.agent(0).history()) a_syns += r.syn_count;
  EXPECT_EQ(a_syns, 400);
}

TEST(ReplayEngineTest, PacedReplayMatchesUnpacedResults) {
  const std::string capture = make_capture(300, SimTime::seconds(45), 9);
  const auto run_with = [&](ReplayClock clock) {
    std::istringstream in(capture, std::ios::binary);
    ReplayConfig cfg;
    cfg.clock = clock;
    cfg.speed = 1e9;  // paced, but effectively instant for the test
    ReplayEngine engine(in, cfg);
    AgentDemux demux(engine.scheduler(),
                     {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
                     core::SynDogParams::paper_defaults());
    engine.add_sink(demux);
    engine.run();
    demux.close_final_period();
    std::vector<std::int64_t> counts;
    for (const auto& r : demux.agent(0).history()) {
      counts.push_back(r.syn_count);
      counts.push_back(r.syn_ack_count);
    }
    return counts;
  };
  EXPECT_EQ(run_with(ReplayClock::kAsFastAsPossible),
            run_with(ReplayClock::kPaced));
}

// ---------------------------------------------------------------------
// Two-thread mode (suite name is matched by the CI tsan job)

TEST(IngestThreadedTest, ThreadedCountsMatchSingleThreaded) {
  const std::string capture =
      make_capture(3000, SimTime::seconds(60), 21);
  const auto run_with = [&](bool threaded) {
    std::istringstream in(capture, std::ios::binary);
    PipelineConfig cfg;
    cfg.ring_capacity = 8;  // small ring: force producer/consumer contention
    cfg.batch_size = 3;
    cfg.threaded = threaded;
    CapturePipeline pipeline(in, cfg);
    CountingSink sink;
    pipeline.add_sink("count", sink);
    pipeline.run();
    EXPECT_EQ(pipeline.delivered(0), sink.total_);
    return std::tuple{sink.total_, sink.bytes_, sink.last_at_,
                      pipeline.stats().records};
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST(IngestThreadedTest, ThreadedReplayEquivalence) {
  const std::string capture =
      make_capture(1500, SimTime::seconds(90), 22);
  const auto run_with = [&](bool threaded) {
    std::istringstream in(capture, std::ios::binary);
    ReplayConfig cfg;
    cfg.pipeline.threaded = threaded;
    cfg.pipeline.ring_capacity = 8;
    ReplayEngine engine(in, cfg);
    AgentDemux demux(engine.scheduler(),
                     {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
                     core::SynDogParams::paper_defaults());
    engine.add_sink(demux);
    engine.run();
    demux.close_final_period();
    std::vector<std::int64_t> counts;
    for (const auto& r : demux.agent(0).history()) {
      counts.push_back(r.syn_count);
      counts.push_back(r.syn_ack_count);
    }
    return counts;
  };
  const auto single = run_with(false);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, run_with(true));
}

TEST(IngestThreadedTest, ThreadedStalledSinkStillThrows) {
  const std::string capture = make_capture(50, SimTime::seconds(2), 23);
  std::istringstream in(capture, std::ios::binary);
  PipelineConfig cfg;
  cfg.threaded = true;
  cfg.ring_capacity = 4;
  CapturePipeline pipeline(in, cfg);
  CountingSink stalled(0);
  pipeline.add_sink("stalled", stalled, BackpressurePolicy::kBlock);
  EXPECT_THROW(pipeline.run(), std::runtime_error);
}

// ---------------------------------------------------------------------
// Sharded datapath vs the single-threaded oracle (suite name is matched
// by the CI tsan job)

struct OracleResult {
  std::vector<std::vector<core::PeriodReport>> histories;
  std::uint64_t local = 0;
  std::uint64_t unroutable = 0;
  PipelineStats stats;
  SimTime last_at;
};

/// The deterministic reference pump: ReplayEngine + AgentDemux.
OracleResult run_oracle(const std::string& capture,
                        const std::vector<StubSpec>& stubs,
                        const core::SynDogParams& params,
                        DemuxOptions options = {}) {
  std::istringstream in(capture, std::ios::binary);
  ReplayEngine engine(in, {});
  AgentDemux demux(engine.scheduler(), stubs, params, options);
  engine.add_sink(demux);
  OracleResult out;
  out.stats = engine.run();
  demux.close_final_period();
  for (std::size_t i = 0; i < demux.stub_count(); ++i) {
    out.histories.push_back(demux.agent(i).history());
  }
  out.local = demux.local_frames();
  out.unroutable = demux.unroutable_frames();
  out.last_at = engine.last_frame_at();
  return out;
}

/// Runs the sharded datapath at 1..max_threads threads and asserts its
/// stats, routing tallies, and every PeriodReport field (doubles
/// compared exactly) match the oracle.
void expect_sharded_matches_oracle(const std::string& capture,
                                   const std::vector<StubSpec>& stubs,
                                   const core::SynDogParams& params,
                                   DemuxOptions options = {},
                                   std::size_t max_threads = 4) {
  const OracleResult oracle = run_oracle(capture, stubs, params, options);
  for (std::size_t threads = 1; threads <= max_threads; ++threads) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::istringstream in(capture, std::ios::binary);
    ShardedConfig cfg;
    cfg.threads = threads;
    cfg.params = params;
    cfg.mode = options.mode;
    cfg.default_stub = options.default_stub;
    ShardedReplay sharded(in, stubs, cfg);
    sharded.run();

    EXPECT_EQ(sharded.stats().records, oracle.stats.records);
    EXPECT_EQ(sharded.stats().frames, oracle.stats.frames);
    EXPECT_EQ(sharded.stats().bytes, oracle.stats.bytes);
    EXPECT_EQ(sharded.stats().decode_failures,
              oracle.stats.decode_failures);
    EXPECT_EQ(sharded.stats().truncated, oracle.stats.truncated);
    EXPECT_EQ(sharded.local_frames(), oracle.local);
    EXPECT_EQ(sharded.unroutable_frames(), oracle.unroutable);
    EXPECT_EQ(sharded.last_frame_at().ns(), oracle.last_at.ns());

    ASSERT_EQ(sharded.shard_count(), threads);
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < sharded.shard_count(); ++i) {
      delivered += sharded.shard(i).delivered;
      EXPECT_EQ(sharded.shard(i).dropped, 0u);
    }
    EXPECT_EQ(delivered, sharded.stats().frames);

    ASSERT_EQ(sharded.stub_count(), oracle.histories.size());
    for (std::size_t s = 0; s < oracle.histories.size(); ++s) {
      SCOPED_TRACE("stub=" + std::to_string(s));
      const std::vector<core::PeriodReport>& got = sharded.history(s);
      const std::vector<core::PeriodReport>& want = oracle.histories[s];
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t p = 0; p < want.size(); ++p) {
        SCOPED_TRACE("period=" + std::to_string(p));
        EXPECT_EQ(got[p].period_index, want[p].period_index);
        EXPECT_EQ(got[p].syn_count, want[p].syn_count);
        EXPECT_EQ(got[p].syn_ack_count, want[p].syn_ack_count);
        EXPECT_EQ(got[p].k_estimate, want[p].k_estimate);
        EXPECT_EQ(got[p].delta, want[p].delta);
        EXPECT_EQ(got[p].x, want[p].x);
        EXPECT_EQ(got[p].y, want[p].y);
        EXPECT_EQ(got[p].alarm, want[p].alarm);
        EXPECT_EQ(got[p].x_clamped, want[p].x_clamped);
      }
    }
  }
}

TEST(IngestShardedTest, MatchesOracleSingleStub) {
  expect_sharded_matches_oracle(
      make_capture(2000, SimTime::seconds(130), 77),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOracleMultiStubBothDirections) {
  // Stub A floods an external victim (alarms); stub B only answers
  // handshakes (quiet). Cross-checks outbound and inbound counting and
  // the alarm bit through the merge.
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  std::int64_t ns = 0;
  for (int i = 0; i < 400; ++i) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(1);
    spec.dst_mac = net::MacAddress::for_host(0);
    spec.src_ip = net::Ipv4Address(10, 1, 0,
                                   static_cast<std::uint8_t>(i % 200 + 1));
    spec.dst_ip = net::Ipv4Address(192, 0, 2, 9);
    spec.src_port = static_cast<std::uint16_t>(1024 + i);
    spec.dst_port = 80;
    writer.write(SimTime::nanoseconds(ns += 100'000'000),
                 net::encode_frame(net::make_syn(spec)));
    if (i % 4 == 0) {
      net::TcpPacketSpec reply;
      reply.src_mac = net::MacAddress::for_host(0);
      reply.dst_mac = net::MacAddress::for_host(2);
      reply.src_ip = net::Ipv4Address(192, 0, 2, 9);
      reply.dst_ip = net::Ipv4Address(10, 2, 0,
                                      static_cast<std::uint8_t>(i % 99 + 1));
      reply.src_port = 80;
      reply.dst_port = static_cast<std::uint16_t>(999 + i);
      writer.write(SimTime::nanoseconds(ns),
                   net::encode_frame(net::make_syn_ack(reply)));
    }
  }
  const std::string capture = std::move(out).str();
  const std::vector<StubSpec> stubs = {
      {*net::Ipv4Prefix::parse("10.1.0.0/16"), "a"},
      {*net::Ipv4Prefix::parse("10.2.0.0/16"), "b"}};
  expect_sharded_matches_oracle(capture, stubs,
                                core::SynDogParams::paper_defaults());
  // Last-mile mode swaps which direction feeds which counter.
  DemuxOptions last_mile;
  last_mile.mode = core::AgentMode::kLastMile;
  expect_sharded_matches_oracle(capture, stubs,
                                core::SynDogParams::paper_defaults(),
                                last_mile);
}

TEST(IngestShardedTest, MatchesOracleLocalAndUnroutableFrames) {
  // LAN-local frames (src and dst in one stub), frames matching no stub
  // with default_stub = -1 (unroutable) and with default_stub = 0
  // (credited outbound).
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  std::int64_t ns = 0;
  for (int i = 0; i < 300; ++i) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(1);
    spec.dst_mac = net::MacAddress::for_host(2);
    spec.src_port = static_cast<std::uint16_t>(2000 + i);
    spec.dst_port = 80;
    switch (i % 3) {
      case 0:  // LAN-local: both endpoints inside the stub
        spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
        spec.dst_ip = net::Ipv4Address(10, 1, 7, 2);
        break;
      case 1:  // external-to-external: matches no stub
        spec.src_ip = net::Ipv4Address(192, 0, 2, 1);
        spec.dst_ip = net::Ipv4Address(198, 51, 100, 7);
        break;
      default:  // ordinary outbound
        spec.src_ip = net::Ipv4Address(10, 1, 0,
                                       static_cast<std::uint8_t>(i % 250));
        spec.dst_ip = net::Ipv4Address(192, 0, 2, 9);
        break;
    }
    writer.write(SimTime::nanoseconds(ns += 50'000'000),
                 net::encode_frame(net::make_syn(spec)));
  }
  const std::string capture = std::move(out).str();
  const std::vector<StubSpec> stubs = {
      {*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}};
  DemuxOptions drop_unmatched;
  drop_unmatched.default_stub = -1;
  expect_sharded_matches_oracle(capture, stubs,
                                core::SynDogParams::paper_defaults(),
                                drop_unmatched);
  expect_sharded_matches_oracle(capture, stubs,
                                core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOracleMixedProtocolTraffic) {
  // Fragments, ICMP, non-IPv4 ethertypes, and runt records must take
  // the same accept/reject/no-flags decisions on both datapaths.
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  util::Rng rng(55);
  std::int64_t ns = 0;
  for (int i = 0; i < 600; ++i) {
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    net::ByteBuffer frame = net::encode_frame(
        sample_packet(host, rng.uniform() < 0.5));
    switch (i % 5) {
      case 1:  // non-first fragment: offset 1, no transport header
        frame[14 + 6] = 0x00;
        frame[14 + 7] = 0x01;
        break;
      case 2:  // ICMP: transport bytes reinterpreted, no flags
        frame[14 + 9] = 1;
        break;
      case 3:  // non-IPv4 ethertype: decode failure on both paths
        frame[12] = 0x86;
        frame[13] = 0xdd;
        break;
      case 4:  // runt record: Ethernet header only
        frame.resize(14);
        break;
      default:
        break;
    }
    writer.write(SimTime::nanoseconds(ns += 40'000'000), frame);
  }
  expect_sharded_matches_oracle(
      std::move(out).str(),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOracleAbsoluteEpochTimestamps) {
  // 2024-style absolute stamps: both datapaths must rebase to the first
  // decoded frame under TimeOrigin::kAuto.
  const std::int64_t epoch_ns = 1'700'000'000LL * 1'000'000'000LL;
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  util::Rng rng(66);
  for (int i = 0; i < 500; ++i) {
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    writer.write(
        SimTime::nanoseconds(epoch_ns + i * 90'000'000LL),
        net::encode_frame(sample_packet(host, rng.uniform() < 0.4)));
  }
  expect_sharded_matches_oracle(
      std::move(out).str(),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOracleTruncatedCapture) {
  const std::string whole = make_capture(800, SimTime::seconds(50), 88);
  // Chop mid-record: both datapaths must stop at the same record and
  // flag the capture truncated.
  expect_sharded_matches_oracle(
      whole.substr(0, whole.size() - 7),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOraclePcapng) {
  std::stringstream buf;
  pcap::PcapngWriter writer(buf);
  util::Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    writer.write(
        SimTime::nanoseconds(1 + i * 120'000'000LL),
        net::encode_frame(sample_packet(host, rng.uniform() < 0.5)));
  }
  expect_sharded_matches_oracle(
      buf.str(), {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

TEST(IngestShardedTest, MatchesOracleThroughSynAckCollapse) {
  // Several healthy periods grow K past collapse_min_k, then SYN/ACKs
  // vanish for longer than outage_patience, then traffic recovers: the
  // merge must reproduce the agent's gap absorption, the patience
  // overflow (raw counts fed without resetting the streak), and the
  // recovery reset, byte for byte.
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);
  const std::int64_t t0_ns = SimTime::seconds(20).ns();
  std::uint16_t port = 1000;
  const auto write_period = [&](int period, int syns, int syn_acks) {
    const std::int64_t base = period * t0_ns;
    const int total = syns + syn_acks;
    for (int i = 0; i < total; ++i) {
      const auto host = static_cast<std::uint32_t>(i % 120 + 1);
      net::TcpPacketSpec spec;
      spec.src_mac = net::MacAddress::for_host(host);
      spec.dst_mac = net::MacAddress::for_host(0);
      spec.src_port = ++port;
      spec.dst_port = 80;
      const auto at = SimTime::nanoseconds(
          base + 1 + (i * (t0_ns - 2)) / total);
      if (i < syns) {
        spec.src_ip = net::Ipv4Address(10, 1, 0,
                                       static_cast<std::uint8_t>(host));
        spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
        writer.write(at, net::encode_frame(net::make_syn(spec)));
      } else {
        std::swap(spec.src_port, spec.dst_port);
        spec.src_ip = net::Ipv4Address(192, 0, 2, 1);
        spec.dst_ip = net::Ipv4Address(10, 1, 0,
                                       static_cast<std::uint8_t>(host));
        writer.write(at, net::encode_frame(net::make_syn_ack(spec)));
      }
    }
  };
  int period = 0;
  for (; period < 6; ++period) write_period(period, 40, 40);  // grow K
  for (; period < 13; ++period) write_period(period, 40, 0);  // collapse
  for (; period < 16; ++period) write_period(period, 40, 40);  // recover
  expect_sharded_matches_oracle(
      std::move(out).str(),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
}

/// Runs `capture` through the ByteSpan (zero-copy) constructor and
/// asserts stats, end state, routing tallies, and every history field
/// match the stream-constructed run — the span producer re-implements
/// the pcap record walk, so framing equivalence is its own contract.
void expect_span_matches_stream(const std::string& capture,
                                std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  const std::vector<StubSpec> stubs = {
      {*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}};
  ShardedConfig cfg;
  cfg.threads = threads;
  cfg.params = core::SynDogParams::paper_defaults();

  std::istringstream in(capture, std::ios::binary);
  ShardedReplay from_stream(in, stubs, cfg);
  from_stream.run();

  ShardedReplay from_span(
      net::ByteSpan{reinterpret_cast<const std::uint8_t*>(capture.data()),
                    capture.size()},
      stubs, cfg);
  EXPECT_EQ(from_span.format(), from_stream.format());
  from_span.run();

  EXPECT_EQ(from_span.stats().records, from_stream.stats().records);
  EXPECT_EQ(from_span.stats().frames, from_stream.stats().frames);
  EXPECT_EQ(from_span.stats().bytes, from_stream.stats().bytes);
  EXPECT_EQ(from_span.stats().decode_failures,
            from_stream.stats().decode_failures);
  EXPECT_EQ(from_span.stats().truncated, from_stream.stats().truncated);
  EXPECT_EQ(from_span.end_state(), from_stream.end_state());
  EXPECT_EQ(from_span.local_frames(), from_stream.local_frames());
  EXPECT_EQ(from_span.unroutable_frames(),
            from_stream.unroutable_frames());
  EXPECT_EQ(from_span.last_frame_at().ns(),
            from_stream.last_frame_at().ns());
  ASSERT_EQ(from_span.stub_count(), from_stream.stub_count());
  for (std::size_t s = 0; s < from_span.stub_count(); ++s) {
    SCOPED_TRACE("stub=" + std::to_string(s));
    const std::vector<core::PeriodReport>& got = from_span.history(s);
    const std::vector<core::PeriodReport>& want = from_stream.history(s);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < want.size(); ++p) {
      SCOPED_TRACE("period=" + std::to_string(p));
      EXPECT_EQ(got[p].period_index, want[p].period_index);
      EXPECT_EQ(got[p].syn_count, want[p].syn_count);
      EXPECT_EQ(got[p].syn_ack_count, want[p].syn_ack_count);
      EXPECT_EQ(got[p].k_estimate, want[p].k_estimate);
      EXPECT_EQ(got[p].x, want[p].x);
      EXPECT_EQ(got[p].y, want[p].y);
      EXPECT_EQ(got[p].alarm, want[p].alarm);
    }
  }
}

TEST(IngestShardedTest, SpanSourceMatchesStreamSourcePcap) {
  const std::string capture = make_capture(1200, SimTime::seconds(70), 31);
  expect_span_matches_stream(capture, 1);
  expect_span_matches_stream(capture, 3);
}

TEST(IngestShardedTest, SpanSourceMatchesStreamSourceTruncated) {
  // Chop mid-record: the span walk must stop at the same record and
  // report the same kTruncated end state as the stream reader.
  const std::string whole = make_capture(600, SimTime::seconds(40), 32);
  expect_span_matches_stream(whole.substr(0, whole.size() - 9), 2);
}

TEST(IngestShardedTest, SpanSourceMatchesStreamSourcePcapng) {
  std::stringstream buf;
  pcap::PcapngWriter writer(buf);
  util::Rng rng(33);
  for (int i = 0; i < 300; ++i) {
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    writer.write(
        SimTime::nanoseconds(1 + i * 150'000'000LL),
        net::encode_frame(sample_packet(host, rng.uniform() < 0.5)));
  }
  const std::string capture = buf.str();
  expect_span_matches_stream(capture, 2);
}

TEST(IngestShardedTest, SpanSourceRejectsGarbage) {
  const std::vector<StubSpec> stubs = {
      {*net::Ipv4Prefix::parse("10.1.0.0/16"), "s"}};
  const auto span_of = [](const std::string& bytes) {
    return net::ByteSpan{
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()};
  };
  const std::string tiny = "abc";  // shorter than the 4-byte magic sniff
  EXPECT_THROW(ShardedReplay(span_of(tiny), stubs, {}),
               std::runtime_error);
  const std::string garbage = "definitely not a capture";
  EXPECT_THROW(ShardedReplay(span_of(garbage), stubs, {}),
               std::runtime_error);
}

TEST(IngestShardedTest, RejectsGarbageAndSecondRun) {
  {
    std::istringstream in("definitely not a capture", std::ios::binary);
    EXPECT_THROW(
        ShardedReplay(in, {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "s"}},
                      {}),
        std::runtime_error);
  }
  const std::string capture = make_capture(20, SimTime::seconds(1), 3);
  std::istringstream in(capture, std::ios::binary);
  ShardedReplay sharded(
      in, {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "s"}}, {});
  sharded.run();
  EXPECT_THROW(sharded.run(), std::logic_error);
}

TEST(IngestShardedTest, ConfigValidation) {
  const std::string capture = make_capture(5, SimTime::seconds(1), 4);
  const std::vector<StubSpec> stubs = {
      {*net::Ipv4Prefix::parse("10.1.0.0/16"), "s"}};
  const auto expect_rejects = [&](ShardedConfig cfg) {
    std::istringstream in(capture, std::ios::binary);
    EXPECT_THROW(ShardedReplay(in, stubs, cfg), std::invalid_argument);
  };
  ShardedConfig cfg;
  cfg.threads = 0;
  expect_rejects(cfg);
  cfg = ShardedConfig{};
  cfg.ring_capacity = 0;
  expect_rejects(cfg);
  cfg = ShardedConfig{};
  cfg.flush_threshold = 0;
  expect_rejects(cfg);
  cfg = ShardedConfig{};
  cfg.default_stub = 1;  // only one stub
  expect_rejects(cfg);
  cfg = ShardedConfig{};
  cfg.default_stub = -2;
  expect_rejects(cfg);
  {
    std::istringstream in(capture, std::ios::binary);
    EXPECT_THROW(ShardedReplay(in, {}, ShardedConfig{}),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace syndog::ingest
