// Property tests for wire parsing under hostile framing.
//
// The paper's detector is only as good as its counting layer (§2): a parser
// that crashes or reads out of bounds on adversarial input corrupts the
// CUSUM's Δn. These tests drive every parser with seeded garbage, truncated
// prefixes of valid frames, deliberately misaligned buffers, and bit-flipped
// capture files. The invariant everywhere: return nullopt / set truncated /
// throw std::runtime_error — never crash. Run under ASan+UBSan
// (`ctest --preset asan-ubsan`) these become memory-safety proofs.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "syndog/net/packet.hpp"
#include "syndog/net/wire.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/pcap/pcapng.hpp"
#include "syndog/util/rng.hpp"

namespace syndog {
namespace {

constexpr std::uint64_t kSeed = 0x5d0e57ab1e5eedULL;
constexpr int kTrials = 500;

net::ByteBuffer random_bytes(util::Rng& rng, std::size_t size) {
  net::ByteBuffer buf(size);
  for (auto& b : buf) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return buf;
}

net::ByteBuffer sample_frame(util::Rng& rng) {
  net::TcpPacketSpec spec;
  const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 250));
  spec.src_mac = net::MacAddress::for_host(host);
  spec.dst_mac = net::MacAddress::for_host(0xffffff);
  spec.src_ip = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(host));
  spec.dst_ip = net::Ipv4Address(192, 0, 2, 1);
  spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  spec.dst_port = 80;
  return net::encode_frame(net::make_syn(spec));
}

/// Exercises every header parser on one buffer; the assertions are the
/// internal-consistency invariants, the real check is ASan/UBSan silence.
void parse_all(net::ByteSpan bytes) {
  if (auto eth = net::parse_ethernet(bytes)) {
    ASSERT_GE(bytes.size(), net::EthernetHeader::kSize);
  }
  if (auto ip = net::parse_ipv4(bytes)) {
    ASSERT_GE(bytes.size(), ip->header_bytes());
    ASSERT_EQ(ip->version, 4u);
  }
  if (auto tcp = net::parse_tcp(bytes)) {
    ASSERT_GE(bytes.size(), tcp->header_bytes());
  }
  if (auto udp = net::parse_udp(bytes)) {
    ASSERT_GE(udp->length, net::UdpHeader::kSize);
  }
  (void)net::parse_icmp(bytes);
  (void)net::decode_frame(bytes);
  (void)net::verify_ipv4_checksum(bytes);
}

TEST(WireFuzzTest, GarbageBuffersNeverCrashHeaderParsers) {
  util::Rng rng(kSeed);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 128));
    const net::ByteBuffer buf = random_bytes(rng, size);
    parse_all(net::ByteSpan{buf.data(), buf.size()});
  }
}

TEST(WireFuzzTest, TruncatedValidFramesNeverCrash) {
  util::Rng rng(util::splitmix64(kSeed));
  for (int trial = 0; trial < kTrials; ++trial) {
    const net::ByteBuffer frame = sample_frame(rng);
    const auto cut =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(frame.size())));
    parse_all(net::ByteSpan{frame.data(), cut});
  }
}

TEST(WireFuzzTest, MisalignedBuffersAreSafe) {
  util::Rng rng(kSeed + 1);
  for (int trial = 0; trial < kTrials; ++trial) {
    const net::ByteBuffer frame = sample_frame(rng);
    // Copy the frame to every odd offset inside an oversized arena so the
    // parsers see 2- and 4-byte fields at misaligned addresses; the
    // memcpy-based safe readers must be exact regardless.
    net::ByteBuffer arena(frame.size() + 8, 0);
    const auto offset = static_cast<std::size_t>(rng.uniform_int(1, 7));
    std::memcpy(arena.data() + offset, frame.data(), frame.size());
    const net::ByteSpan view{arena.data() + offset, frame.size()};
    parse_all(view);
    const auto aligned = net::decode_frame(net::ByteSpan{frame.data(), frame.size()});
    const auto shifted = net::decode_frame(view);
    ASSERT_TRUE(aligned.has_value());
    ASSERT_TRUE(shifted.has_value());
    EXPECT_EQ(aligned->ip.src.value(), shifted->ip.src.value());
    EXPECT_EQ(aligned->tcp->seq, shifted->tcp->seq);
  }
}

TEST(WireFuzzTest, BitFlippedFrameFieldsStayInBounds) {
  util::Rng rng(kSeed + 2);
  for (int trial = 0; trial < kTrials; ++trial) {
    net::ByteBuffer frame = sample_frame(rng);
    // Flip 1-8 random bits; length/offset fields now lie about the buffer.
    const auto flips = rng.uniform_int(1, 8);
    for (std::int64_t i = 0; i < flips; ++i) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
      frame[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    parse_all(net::ByteSpan{frame.data(), frame.size()});
  }
}

template <typename ReaderT>
void drain_reader(std::istream& in) {
  try {
    ReaderT reader(in);
    while (reader.next()) {
    }
  } catch (const std::runtime_error&) {
    // Malformed input is allowed to throw; it must not crash.
  }
}

TEST(WireFuzzTest, PcapReaderSurvivesGarbageStreams) {
  util::Rng rng(kSeed + 3);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 512));
    const net::ByteBuffer buf = random_bytes(rng, size);
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(buf.data()), buf.size()));
    drain_reader<pcap::Reader>(stream);
  }
}

TEST(WireFuzzTest, PcapngReaderSurvivesGarbageStreams) {
  util::Rng rng(kSeed + 4);
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 512));
    net::ByteBuffer buf = random_bytes(rng, size);
    // Half the trials start with a plausible SHB type so the reader gets
    // past the magic check and into block parsing.
    if (trial % 2 == 0 && buf.size() >= 4) {
      buf[0] = 0x0a;
      buf[1] = 0x0d;
      buf[2] = 0x0d;
      buf[3] = 0x0a;
    }
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(buf.data()), buf.size()));
    drain_reader<pcap::PcapngReader>(stream);
  }
}

std::string valid_capture(util::Rng& rng, bool pcapng) {
  std::stringstream out;
  if (pcapng) {
    pcap::PcapngWriter writer(out);
    for (int i = 0; i < 4; ++i) {
      writer.write(util::SimTime::from_seconds(0.1 * (i + 1)),
                   sample_frame(rng));
    }
  } else {
    pcap::Writer writer(out);
    for (int i = 0; i < 4; ++i) {
      writer.write(util::SimTime::from_seconds(0.1 * (i + 1)),
                   sample_frame(rng));
    }
  }
  return out.str();
}

TEST(WireFuzzTest, CorruptedCaptureFilesNeverCrashSniffer) {
  util::Rng rng(kSeed + 5);
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string file = valid_capture(rng, trial % 2 == 0);
    // Corrupt: truncate to a random prefix, then flip a few random bytes.
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(file.size())));
    file.resize(cut);
    for (std::int64_t i = 0; i < rng.uniform_int(0, 4) && !file.empty(); ++i) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(file.size()) - 1));
      file[at] = static_cast<char>(rng.uniform_int(0, 255));
    }
    std::stringstream stream(file);
    try {
      (void)pcap::read_any_capture(stream);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(WireFuzzTest, SafeLoadsMatchReferenceAtEveryOffset) {
  util::Rng rng(kSeed + 6);
  net::ByteBuffer buf = random_bytes(rng, 64);
  for (std::size_t at = 0; at + 8 <= buf.size(); ++at) {
    const std::uint8_t* p = buf.data() + at;
    EXPECT_EQ(net::load_be16(p),
              static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]));
    EXPECT_EQ(net::load_be32(p), (std::uint32_t{p[0]} << 24) |
                                     (std::uint32_t{p[1]} << 16) |
                                     (std::uint32_t{p[2]} << 8) | p[3]);
    EXPECT_EQ(net::load_le16(p),
              static_cast<std::uint16_t>(std::uint16_t{p[0]} |
                                         (std::uint16_t{p[1]} << 8)));
    EXPECT_EQ(net::load_le32(p),
              std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
                  (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24));
    std::uint64_t le64 = 0;
    for (int i = 7; i >= 0; --i) le64 = (le64 << 8) | p[i];
    EXPECT_EQ(net::load_le64(p), le64);
  }
  EXPECT_EQ(net::byteswap16(0x1234u), 0x3412u);
  EXPECT_EQ(net::byteswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(net::byteswap64(0x0102030405060708ULL), 0x0807060504030201ULL);
}

}  // namespace
}  // namespace syndog
