#include <gtest/gtest.h>

#include "syndog/core/mitigate.hpp"
#include "syndog/util/rng.hpp"

namespace syndog::core {
namespace {

using util::SimTime;

ConnKey key_of(std::uint32_t ip, std::uint16_t port) {
  return ConnKey{net::Ipv4Address{ip}, port, 80};
}

// --- SynCookieCodec -----------------------------------------------------------

TEST(SynCookiesTest, RoundTripVerifies) {
  SynCookieCodec codec(0x1234567890abcdefULL);
  const ConnKey key = key_of(0x0a010203, 44321);
  const std::uint32_t isn = 0xfeedbeef;
  const std::uint32_t cookie = codec.make(key, isn, 100);
  EXPECT_TRUE(codec.verify(key, isn, cookie, 100));
  // Still valid one counter tick later (the client took a while to ACK).
  EXPECT_TRUE(codec.verify(key, isn, cookie, 101));
  // Expired two ticks later.
  EXPECT_FALSE(codec.verify(key, isn, cookie, 102));
}

TEST(SynCookiesTest, RejectsTamperedFields) {
  SynCookieCodec codec(42);
  const ConnKey key = key_of(0x0a010203, 44321);
  const std::uint32_t cookie = codec.make(key, 7, 100);
  EXPECT_FALSE(codec.verify(key_of(0x0a010204, 44321), 7, cookie, 100));
  EXPECT_FALSE(codec.verify(key_of(0x0a010203, 44322), 7, cookie, 100));
  EXPECT_FALSE(codec.verify(key, 8, cookie, 100));
  EXPECT_FALSE(codec.verify(key, 7, cookie ^ 0x100, 100));
}

TEST(SynCookiesTest, DifferentSecretsDisagree) {
  SynCookieCodec a(1);
  SynCookieCodec b(2);
  const ConnKey key = key_of(0x0a010203, 1000);
  const std::uint32_t cookie = a.make(key, 7, 50);
  EXPECT_FALSE(b.verify(key, 7, cookie, 50));
}

TEST(SynCookiesTest, ForgeryResistanceSpotCheck) {
  // A blind attacker guessing cookies should practically never succeed.
  SynCookieCodec codec(0xdeadbeefcafef00dULL);
  const ConnKey key = key_of(0x0a010203, 1000);
  util::Rng rng(5);
  int accepted = 0;
  for (int i = 0; i < 100000; ++i) {
    if (codec.verify(key, 7, rng.next_u32(), 100)) ++accepted;
  }
  // 29 bits of MAC and 2 accepted counter windows: expect ~0.04 hits.
  EXPECT_LE(accepted, 3);
}

// --- SynCache -------------------------------------------------------------------

TEST(SynCacheTest, AdmitCompleteLifecycle) {
  SynCache cache(8);
  const ConnKey key = key_of(1, 1000);
  EXPECT_EQ(cache.admit(key, SimTime::zero()),
            SynCache::AdmitResult::kAdmitted);
  EXPECT_EQ(cache.admit(key, SimTime::zero()),
            SynCache::AdmitResult::kDuplicate);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.complete(key));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.complete(key));  // already gone
  EXPECT_EQ(cache.stats().completions, 1u);
  EXPECT_EQ(cache.stats().completion_misses, 1u);
}

TEST(SynCacheTest, EvictsOldestWhenFull) {
  SynCache cache(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    (void)cache.admit(key_of(i, 1000), SimTime::seconds(i));
  }
  EXPECT_EQ(cache.admit(key_of(99, 1000), SimTime::seconds(9)),
            SynCache::AdmitResult::kAdmittedWithEviction);
  EXPECT_EQ(cache.size(), 3u);
  // The oldest (ip 0) was evicted; its late ACK misses.
  EXPECT_FALSE(cache.complete(key_of(0, 1000)));
  EXPECT_TRUE(cache.complete(key_of(1, 1000)));
}

TEST(SynCacheTest, FloodThrashesLegitimateEntries) {
  // The failure mode SYN-dog avoids by being stateless: under a spoofed
  // flood, a bounded victim-side cache evicts honest half-opens before
  // their ACKs arrive.
  SynCache cache(64);
  util::Rng rng(7);
  // A legitimate client connects...
  const ConnKey honest = key_of(0x0a000001, 5555);
  (void)cache.admit(honest, SimTime::zero());
  // ...then 10,000 spoofed SYNs land before its ACK returns.
  for (int i = 0; i < 10000; ++i) {
    (void)cache.admit(key_of(rng.next_u32(), 80), SimTime::zero());
  }
  EXPECT_FALSE(cache.complete(honest));
  EXPECT_GT(cache.stats().evictions, 9000u);
}

TEST(SynCacheTest, ExpireDropsOnlyOldEntries) {
  SynCache cache(16);
  (void)cache.admit(key_of(1, 1), SimTime::seconds(0));
  (void)cache.admit(key_of(2, 2), SimTime::seconds(50));
  EXPECT_EQ(cache.expire(SimTime::seconds(76), SimTime::seconds(75)), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.complete(key_of(2, 2)));
}

TEST(SynCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(SynCache{0}, std::invalid_argument);
}

}  // namespace
}  // namespace syndog::core
