# Sanitizer wiring for the whole tree.
#
# SYNDOG_SANITIZE is a semicolon list of sanitizer names understood by the
# compiler's -fsanitize= flag, e.g. "address;undefined" or "thread". The
# flags are applied globally (compile + link) so every library, test, and
# bench binary in the tree runs instrumented; mixing instrumented and
# uninstrumented TUs produces false negatives.
#
# Used by the CMakePresets.json presets `asan-ubsan` and `tsan`; see
# docs/STATIC_ANALYSIS.md.

set(SYNDOG_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable (e.g. address;undefined or thread)")

if(SYNDOG_SANITIZE)
  if("thread" IN_LIST SYNDOG_SANITIZE AND "address" IN_LIST SYNDOG_SANITIZE)
    message(FATAL_ERROR "SYNDOG_SANITIZE: thread and address sanitizers are "
                        "mutually exclusive; configure two build trees instead")
  endif()
  list(JOIN SYNDOG_SANITIZE "," _syndog_sanitize_csv)
  add_compile_options(
    -fsanitize=${_syndog_sanitize_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  add_link_options(-fsanitize=${_syndog_sanitize_csv})
  message(STATUS "syndog: sanitizers enabled: ${_syndog_sanitize_csv}")
endif()
