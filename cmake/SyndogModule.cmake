# syndog_add_module(<name> SOURCES <files...> [DEPS <targets...>])
#
# Declares one module library (syndog_<name> plus the syndog::<name> alias)
# with its public headers under include/. Centralizing the declaration keeps
# warning/sanitizer flags uniform and lets tooling enumerate the public
# headers of every module: each header is registered on the global
# SYNDOG_PUBLIC_HEADERS property, which the `lint` target feeds to
# tools/lint/syndog_lint.py for the self-containment check.
#
# The DEPS list is the module's *declared* layer position; the same DAG is
# mirrored in tools/lint/syndog_lint.py (LAYER_DEPS) and DESIGN.md §3, and
# the linter fails the build if an #include crosses it.

define_property(GLOBAL PROPERTY SYNDOG_PUBLIC_HEADERS
  BRIEF_DOCS "All public syndog/ headers, for the lint self-containment check"
  FULL_DOCS "Absolute paths of every header under src/*/include/syndog/")

function(syndog_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "syndog_add_module(${name}): SOURCES is required")
  endif()

  set(target syndog_${name})
  add_library(${target} ${ARG_SOURCES})
  target_include_directories(${target} PUBLIC
    ${CMAKE_CURRENT_SOURCE_DIR}/include)
  if(ARG_DEPS)
    target_link_libraries(${target} PUBLIC ${ARG_DEPS})
  endif()
  add_library(syndog::${name} ALIAS ${target})

  file(GLOB_RECURSE _headers CONFIGURE_DEPENDS
    ${CMAKE_CURRENT_SOURCE_DIR}/include/syndog/*.hpp)
  set_property(GLOBAL APPEND PROPERTY SYNDOG_PUBLIC_HEADERS ${_headers})
endfunction()
