// The paper's framing claim (§1): victim-side defenses "must rely on the
// expensive IP traceback to trace the flooding sources", while SYN-dog —
// sitting one hop from the sources — localizes them with two counters.
//
// This bench prices the alternatives on the same attack:
//  * PPM (Savage et al. [23]): attack packets the victim must *receive*
//    before the path is reconstructable, vs path length;
//  * SPIE (Snoeren et al. [27]): per-router digest memory and query
//    degradation as the tables fill with cross traffic;
//  * SYN-dog: detection time in packets-equivalent at the source stub
//    and the state it keeps (two counters + three scalars).
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/traceback/ppm.hpp"
#include "syndog/traceback/spie.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "traceback_comparison",
      "IP traceback vs SYN-dog (the paper's \"expensive traceback\" claim)",
      "PPM needs thousands of received attack packets; SPIE needs "
      "per-packet state at every router; SYN-dog needs two counters at "
      "one leaf router");

  // --- PPM: packets to reconstruct vs path length -------------------------
  // This is the *idealized* full-edge variant (whole router ids in the
  // mark). The deployable scheme compresses edges into the 16-bit IP
  // identification field as 8 XOR fragments, multiplying the packet cost
  // by orders of magnitude (Savage et al. report ~2,500 packets typical);
  // the idealized numbers below are therefore a LOWER bound on PPM cost.
  std::printf("\n-- probabilistic packet marking (p = 0.04, idealized "
              "full-edge marks) --\n");
  util::TextTable ppm({"path length (hops)", "packets needed (mean of 10)",
                       "Savage bound ln(d)/(p(1-p)^(d-1))"});
  for (const int depth : {5, 10, 15, 20, 25}) {
    const traceback::AttackTopology topo =
        traceback::AttackTopology::chain(depth);
    double total = 0.0;
    int completed = 0;
    for (int r = 0; r < 10; ++r) {
      util::Rng rng(100 + r);
      const auto packets = traceback::packets_until_traced(
          topo, topo.attacker_leaves()[0], 0.04, rng);
      if (packets) {
        total += static_cast<double>(*packets);
        ++completed;
      }
    }
    ppm.add_row(
        {std::to_string(depth),
         completed ? util::format_count(
                         static_cast<std::int64_t>(total / completed))
                   : "budget exceeded",
         util::format_count(static_cast<std::int64_t>(
             traceback::PpmCollector::expected_packets_bound(0.04,
                                                             depth)))});
  }
  std::printf("%s", ppm.to_string().c_str());

  // --- SPIE: state cost and fill degradation -------------------------------
  std::printf("\n-- SPIE hash digests (2^18 bits/router, 4 hashes) --\n");
  util::Rng topo_rng(7);
  const traceback::AttackTopology topo =
      traceback::AttackTopology::random(25, 8, 20, topo_rng);
  traceback::SpieSystem spie(topo, traceback::SpieSystem::Params{});
  util::Rng rng(11);
  const std::uint64_t digest =
      spie.forward_attack_packet(topo.attacker_leaves()[0], rng);

  util::TextTable st({"cross traffic per router", "mean filter fill",
                      "expected FP rate", "traced routers (true path)"});
  const std::size_t true_path =
      topo.path_from(topo.attacker_leaves()[0]).size();
  for (const int load : {0, 20000, 60000, 120000}) {
    // Top up each router's digest table to `load` total insertions.
    for (traceback::RouterId id = 0; id < topo.router_count(); ++id) {
      while (spie.router_filter(id).inserted() <
             static_cast<std::uint64_t>(load)) {
        spie.forward_cross_traffic(id, rng.next_u64());
      }
    }
    double fill = 0.0;
    double fp = 0.0;
    for (traceback::RouterId id = 0; id < topo.router_count(); ++id) {
      fill += spie.router_filter(id).fill_ratio();
      fp += spie.router_filter(id).expected_false_positive_rate();
    }
    fill /= static_cast<double>(topo.router_count());
    fp /= static_cast<double>(topo.router_count());
    st.add_row({util::format_count(load), util::format_double(fill, 3),
                util::format_double(fp, 4),
                util::strprintf("%zu (%zu)", spie.trace(digest).size(),
                                true_path)});
  }
  std::printf("%s", st.to_string().c_str());
  std::printf("digest memory deployed: %s bytes across %zu routers "
              "(per time window!)\n",
              util::format_count(static_cast<std::int64_t>(
                  spie.total_state_bytes())).c_str(),
              topo.router_count());

  // --- SYN-dog on the same attack ------------------------------------------
  std::printf("\n-- SYN-dog at the source's leaf router --\n");
  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  bench::EnsembleConfig cfg;
  cfg.trials = 10;
  cfg.seed = 1000;
  const bench::DetectionRow r = bench::detection_ensemble(
      spec, 60.0, core::SynDogParams::paper_defaults(), cfg);
  std::printf(
      "fi = 60 SYN/s at UNC: detection in %.1f periods = %.0f seconds =\n"
      "~%s attack packets into the flood; state kept: 2 counters + 3\n"
      "scalars at ONE router; localization: the slave's MAC, for free.\n",
      r.mean_delay_periods, r.mean_delay_periods * 20.0,
      util::format_count(static_cast<std::int64_t>(
          r.mean_delay_periods * 20.0 * 60.0)).c_str());
  std::printf(
      "\nexpected: even idealized PPM needs tens-to-hundreds of received\n"
      "attack packets (deployable fragment encoding: thousands), grows\n"
      "steeply with path length, and only works while the victim is being\n"
      "hit; SPIE answers from one packet but deploys megabytes of rolling\n"
      "per-packet state at EVERY router and degrades as tables fill.\n"
      "SYN-dog spends near-zero state, needs no infrastructure beyond the\n"
      "leaf router, and points at the source subnet by construction.\n");
  return 0;
}
