// Ablation for §3.1's claim: "our algorithm is insensitive to this
// choice" of the observation period t0 (= 20 s in the paper).
//
// What is actually invariant in t0: the normalized drift per period
// (both Delta and K scale linearly with t0, so Xn does not change), and
// therefore the detection delay measured in *periods* and the
// sensitivity floor f_min = (a-c)K/t0 = (a-c) * (SYN/ACK rate). What
// scales with t0 is the wall-clock delay (same number of periods, longer
// periods) — the "sniffing resolution vs stability" trade-off the paper
// names. We sweep t0 and verify all three statements plus the absence of
// false alarms at every setting.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

/// detection_ensemble with a custom observation period. The trace is
/// rebucketed at `t0`; K-bar scales linearly with t0, so Xn's drift per
/// period scales too and the same (a, N) keep working.
bench::DetectionRow run_with_period(const trace::SiteSpec& spec, double fi,
                                    util::SimTime t0, int trials,
                                    std::uint64_t seed) {
  core::SynDogParams params = core::SynDogParams::paper_defaults();
  params.observation_period = t0;

  bench::DetectionRow row;
  row.fi = fi;
  row.trials = trials;
  double delay_sum = 0.0;
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    const trace::ConnectionTrace background = trace::generate_site_trace(
        spec, seed + static_cast<std::uint64_t>(t));
    trace::PeriodSeries ps = trace::extract_periods(background, t0);

    util::Rng rng = util::Rng::child(seed ^ 0xa77ac4,
                                     static_cast<std::uint64_t>(t));
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start =
        util::SimTime::from_seconds(rng.uniform(3 * 60.0, 9 * 60.0));
    auto times = attack::generate_flood_times(flood, rng);
    ps.add_outbound_syns(trace::bucket_times(times, t0, ps.size()));

    const auto reports =
        core::run_over_series(params, ps.out_syn, ps.in_syn_ack);
    const std::int64_t onset = flood.start / t0;
    const std::int64_t fend =
        std::min<std::int64_t>((flood.start + flood.duration) / t0,
                               static_cast<std::int64_t>(ps.size()) - 1);
    for (std::int64_t n = 0; n < onset; ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++row.false_alarm_periods;
      }
    }
    for (std::int64_t n = onset; n <= fend; ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++detected;
        delay_sum += static_cast<double>(n - onset) * t0.to_seconds();
        break;
      }
    }
  }
  row.detection_probability = static_cast<double>(detected) / trials;
  row.mean_delay_periods = detected == 0 ? 0.0 : delay_sum / detected;
  return row;  // mean_delay_periods carries *seconds* here
}

}  // namespace

int main() {
  bench::print_header(
      "ablation_observation_period",
      "Ablation -- observation period t0 (paper §3.1: insensitive)",
      "Xn and the per-period drift are t0-invariant, so delay in periods "
      "and f_min do not depend on t0; wall-clock delay = periods * t0");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  util::TextTable table({"t0 (s)", "fi=60: prob", "delay [t0]",
                         "delay (s)", "fi=120: prob", "delay [t0]",
                         "delay (s)", "false alarms"});
  for (const std::int64_t t0_s : {5, 10, 20, 40, 60}) {
    const util::SimTime t0 = util::SimTime::seconds(t0_s);
    const bench::DetectionRow r60 = run_with_period(spec, 60.0, t0, 15, 1);
    const bench::DetectionRow r120 = run_with_period(spec, 120.0, t0, 15, 1);
    table.add_row(
        {std::to_string(t0_s),
         util::format_double(r60.detection_probability, 2),
         util::format_double(
             r60.mean_delay_periods / static_cast<double>(t0_s), 1),
         util::format_double(r60.mean_delay_periods, 1),
         util::format_double(r120.detection_probability, 2),
         util::format_double(
             r120.mean_delay_periods / static_cast<double>(t0_s), 1),
         util::format_double(r120.mean_delay_periods, 1),
         std::to_string(r60.false_alarm_periods +
                        r120.false_alarm_periods)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: probability 1.0 and zero false alarms at every t0; the\n"
      "delay in periods is ~constant across t0 (the t0-invariance the\n"
      "paper claims), so wall-clock delay grows linearly with t0 -- pick\n"
      "t0 as small as counting overhead allows, 20 s being comfortable.\n");
  return 0;
}
