// Reproduces Table 1: "A summary of the trace features", extended with the
// calibration statistics of the synthetic stand-in traces (the originals
// are not redistributable; see DESIGN.md §2/§5).
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "table1_trace_summary",
      "Table 1 -- trace summary (synthetic stand-ins, calibrated)",
      "LBL 1h bi-dir; Harvard 0.5h bi-dir; UNC 0.5h uni-dir pair; "
      "Auckland 3h uni-dir pair");

  util::TextTable table({"Trace", "Duration", "Traffic type", "Conn attempts",
                         "SYNs", "SYN/ACKs", "K-bar/20s (target)",
                         "c (target)"});

  for (const trace::SiteId id :
       {trace::SiteId::kLbl, trace::SiteId::kHarvard, trace::SiteId::kUnc,
        trace::SiteId::kAuckland}) {
    const trace::SiteSpec spec = trace::site_spec(id);
    const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 42);
    const trace::PeriodSeries ps =
        trace::extract_periods(tr, trace::kObservationPeriod);

    stats::OnlineStats k_stats;
    double delta_sum = 0.0;
    double ack_sum = 0.0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      k_stats.add(static_cast<double>(ps.in_syn_ack[i]));
      delta_sum += static_cast<double>(ps.out_syn[i] - ps.in_syn_ack[i]);
      ack_sum += static_cast<double>(ps.in_syn_ack[i]);
    }
    const double c = ack_sum > 0 ? delta_sum / ack_sum : 0.0;

    const double minutes = spec.duration.to_minutes();
    table.add_row(
        {spec.name,
         minutes >= 60 ? util::format_double(minutes / 60.0, 1) + " hour(s)"
                       : util::format_double(minutes, 0) + " min",
         spec.bidirectional ? "Bi-directional" : "Uni-directional (pair)",
         util::format_count(static_cast<std::int64_t>(tr.attempts())),
         util::format_count(static_cast<std::int64_t>(tr.total_syns())),
         util::format_count(static_cast<std::int64_t>(tr.total_syn_acks())),
         util::format_double(k_stats.mean(), 1) + " (" +
             util::format_double(spec.expected_syn_ack_per_period, 0) + ")",
         util::format_double(c, 4) + " (" +
             util::format_double(spec.expected_c, 3) + ")"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\npaper Table 1 lists only duration and traffic type; the extra\n"
      "columns document how closely each synthetic trace matches the\n"
      "calibration targets derived from the paper's figures (DESIGN.md §5).\n");
  return 0;
}
