// Reproduces Table 3: detection performance of the SYN-dog at Auckland.
//
// The smaller site (K-bar ~ 88-110 vs UNC's ~2100) pushes the detection
// floor down to ~1.75 SYN/s. Paper values:
//   fi:    1.5    1.75   2     5   10
//   prob:  0.55   0.95   1.0   1.0 1.0
//   time:  20.64  12.95  7.85  2   <1
#include <cstdio>

#include "common/experiment.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "table3_auckland_detection",
      "Table 3 -- detection performance at Auckland",
      "smaller K-bar => detection floor drops from 37 to ~1.75 SYN/s");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  bench::EnsembleConfig cfg;
  cfg.trials = 25;
  cfg.seed = 2000;
  cfg.start_min_s = 3 * 60.0;    // paper: random start between 3 and
  cfg.start_max_s = 136 * 60.0;  // 136 minutes

  bench::run_detection_table(spec, params, cfg,
                             {{1.5, 0.55, "20.64"},
                              {1.75, 0.95, "12.95"},
                              {2, 1.0, "7.85"},
                              {5, 1.0, "2"},
                              {10, 1.0, "<1"}},
                             /*fi_decimals=*/2);
  std::printf(
      "\n%d trials per rate; delay in observation periods (t0 = 20 s).\n"
      "Expected shape: partial detection in the 1.5-1.75 SYN/s floor\n"
      "region, certain detection by 2 SYN/s, sub-2-period delay at 5+.\n",
      cfg.trials);
  bench::record_site_calibration(spec, "auckland");
  return 0;
}
