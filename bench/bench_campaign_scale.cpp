// Sharded campaign DES at the paper's §4.2.3 scale: 1,000 stub networks
// (a 1,000,000-host simulated address space) sharing one victim, with
// the attack spread across A_s = 378 stubs — the UNC hiding bound from
// `bench_sensitivity_bound` (V = 14,000 SYN/s, f_min = 37 SYN/s there;
// here the same *ratios* f_i / f_min drive a wire-rate campaign sized to
// the sim's own f_min = a * K-bar / t0).
//
// Three waves, each a fresh campaign over the same 1,000 stubs:
//  * detectable — f_i = 2.5 f_min: every attacked stub must alarm;
//  * boundary   — f_i = 1.0 f_min: zero CUSUM drift, the knife edge;
//  * hiding     — f_i = 0.7 f_min: the spread-out attacker wins, nobody
//    should alarm (the paper's evasion capacity, finally exercised).
//
// The detectable wave is additionally re-run with workers=8 and its
// merged state digest byte-compared against the workers=1 run
// (merge_match) — the determinism contract at full scale.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/campaign/campaign_sim.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/net/address.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;
using util::SimTime;

namespace {

constexpr int kStubs = 1000;
constexpr std::uint32_t kHostsPerStub = 1000;  // 1M-host address space
constexpr int kAttackedStubs = 378;            // A_s at the UNC bound
constexpr double kBgRate = 3.0;                // SYN/s per stub
constexpr double kWarmupS = 60.0;              // 3 periods of K settling
constexpr double kEndS = 140.0;                // + 4 flood periods

campaign::CampaignParams scale_params() {
  campaign::CampaignParams p;
  p.stub_count = kStubs;
  p.hosts_per_stub = kHostsPerStub;
  p.seed = 17;
  return p;
}

std::unique_ptr<campaign::CampaignSim> run_wave(double per_stub_rate,
                                                int workers) {
  auto sim = std::make_unique<campaign::CampaignSim>(scale_params());
  for (int s = 0; s < kStubs; ++s) {
    sim->start_wire_background(s, kBgRate, SimTime::zero(),
                               SimTime::from_seconds(kEndS));
  }
  const net::Ipv4Prefix spoof = *net::Ipv4Prefix::parse("240.0.0.0/8");
  for (int s = 0; s < kAttackedStubs; ++s) {
    util::Rng rng = util::Rng::child(0x5CA1Eu,
                                     static_cast<std::uint64_t>(s));
    std::vector<SimTime> times;
    double t = kWarmupS;
    while (true) {
      t += rng.exponential_mean(1.0 / per_stub_rate);
      if (t >= kEndS) break;
      times.push_back(SimTime::from_seconds(t));
    }
    sim->launch_flood(s, 1, times, spoof);
  }
  sim->run_until(SimTime::from_seconds(kEndS), workers);
  return sim;
}

int alarmed_attacked(const campaign::CampaignSim& sim) {
  int count = 0;
  for (int s = 0; s < kAttackedStubs; ++s) {
    if (sim.agent(s).ever_alarmed()) ++count;
  }
  return count;
}

}  // namespace

int main() {
  bench::print_header(
      "campaign_scale",
      "Sharded 1,000-stub campaign DES at the Eq. (8) hiding bound",
      "A_s=378 attacked stubs, f_i/f_min in {2.5, 1.0, 0.7}; workers 1 "
      "vs 8 byte-compared");

  // The sim's own sensitivity bound (conservative c = 0, like
  // bench_sensitivity_bound): K-bar settles at bg_rate * t0.
  const core::SynDogParams agent = scale_params().agent_params;
  const double t0 = agent.observation_period.to_seconds();
  const double f_min =
      core::SynDog::min_detectable_rate(agent.a, 0.0, kBgRate * t0,
                                        agent.observation_period);
  std::printf("sim f_min = %.3f SYN/s per stub (a=%.2f, K-bar=%.0f, "
              "t0=%.0f s)\n\n",
              f_min, agent.a, kBgRate * t0, t0);

  struct Wave {
    const char* name;
    double ratio;
  };
  const Wave waves[] = {{"detectable", 2.5},
                        {"boundary", 1.0},
                        {"hiding", 0.7}};

  std::string detectable_digest;
  for (const Wave& wave : waves) {
    const double rate = wave.ratio * f_min;
    const obs::WallClock clock;
    const std::int64_t wall_start = clock.now_ns();
    const auto sim = run_wave(rate, 1);
    const double wall_s =
        static_cast<double>(clock.now_ns() - wall_start) / 1e9;
    const int attacked = alarmed_attacked(*sim);
    const int total = sim->stubs_alarmed();
    std::printf(
        "%-10s  f_i=%.2f SYN/s (%.1fx f_min): %3d/%d attacked stubs "
        "alarmed, %d false alarms, %.2fs wall, %.2e events/s\n",
        wave.name, rate, wave.ratio, attacked, kAttackedStubs,
        total - attacked, wall_s,
        static_cast<double>(sim->events_executed()) / wall_s);
    bench::sidecar()->scalar(std::string("fi_over_fmin_") + wave.name,
                             wave.ratio);
    bench::sidecar()->scalar(std::string("stubs_alarmed_") + wave.name,
                             attacked);
    bench::sidecar()->scalar(std::string("false_alarms_") + wave.name,
                             total - attacked);
    if (wave.ratio > 2.0) {
      detectable_digest = sim->state_digest();
      bench::sidecar()->scalar("stubs", kStubs);
      bench::sidecar()->scalar("hosts_simulated",
                               static_cast<double>(kStubs) *
                                   kHostsPerStub);
      bench::sidecar()->scalar(
          "events_per_sec",
          static_cast<double>(sim->events_executed()) / wall_s);
      bench::sidecar()->scalar(
          "cross_records",
          static_cast<double>(sim->cross_stats().to_victim));
      // The realized per-stub share, the empirical side of
      // bench_sensitivity_bound's per_stub_fi_* scalars.
      const double realized_fi =
          static_cast<double>(sim->cross_stats().to_victim) /
          kAttackedStubs / (kEndS - kWarmupS);
      bench::sidecar()->scalar("realized_fi_detectable", realized_fi);
      bench::sidecar()->scalar("realized_fi_over_fmin",
                               realized_fi / f_min);
    }
  }

  // Determinism at scale: the same detectable wave on 8 workers must
  // reproduce the workers=1 digest byte for byte.
  const auto threaded = run_wave(2.5 * f_min, 8);
  const bool match = threaded->state_digest() == detectable_digest;
  bench::sidecar()->scalar("merge_match", match ? 1.0 : 0.0);
  std::printf(
      "\nworkers=8 rerun: %zu-byte state digest %s the workers=1 run\n",
      detectable_digest.size(), match ? "MATCHES" : "DIVERGES from");
  std::printf(
      "\nexpected: all attacked stubs alarm at 2.5x f_min, none hide at "
      "0.7x,\nand the merged digest is identical at any worker count.\n");
  return 0;
}
