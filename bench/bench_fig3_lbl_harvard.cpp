// Reproduces Figure 3: the dynamics of SYN and SYN/ACK packets at LBL and
// Harvard. Both are bidirectional captures, so — as in the paper — the
// plotted "SYN" and "SYN/ACK" series are collected from both directions.
// The claim under test: the two series track each other closely (strong
// positive correlation) regardless of site, volume, or burstiness.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;

namespace {

void run_site(trace::SiteId id, const char* figure) {
  const trace::SiteSpec spec = trace::site_spec(id);
  const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 42);
  const trace::PeriodSeries ps =
      trace::extract_periods(tr, trace::kObservationPeriod);

  const std::vector<double> syn =
      trace::PeriodSeries::to_double(ps.syn_both_directions());
  const std::vector<double> ack =
      trace::PeriodSeries::to_double(ps.syn_ack_both_directions());

  bench::print_series_chart(
      std::string(figure) + " " + spec.name +
          ": SYN vs SYN/ACK per 20 s period (both directions)",
      {{"SYN", syn}, {"SYN/ACK", ack}},
      "time (" + util::format_double(spec.duration.to_minutes(), 0) +
          " minutes total)");

  const double corr = stats::pearson_correlation(syn, ack);
  std::printf(
      "  SYN:     mean %.1f  min %.0f  max %.0f per period\n"
      "  SYN/ACK: mean %.1f  min %.0f  max %.0f per period\n"
      "  Pearson correlation(SYN, SYN/ACK) = %.4f   "
      "(paper: \"consistent synchronization\")\n",
      stats::series_mean(syn), stats::series_min(syn),
      stats::series_max(syn), stats::series_mean(ack),
      stats::series_min(ack), stats::series_max(ack), corr);
}

}  // namespace

int main() {
  bench::print_header(
      "fig3_lbl_harvard",
      "Figure 3 -- SYN / SYN-ACK dynamics at LBL and Harvard",
      "Fig. 3(a): LBL ~5-50 pkts/period; Fig. 3(b): Harvard ~200-700; the "
      "two series overlap almost everywhere");
  run_site(trace::SiteId::kLbl, "Fig. 3(a)");
  run_site(trace::SiteId::kHarvard, "Fig. 3(b)");
  return 0;
}
