// Raw discrete-event scheduler throughput.
//
// The paper's operational pitch is "low computation overhead" at the leaf
// router, and every headline table rides on multi-million-event DES runs —
// so the event plumbing itself is a measured artifact. Two phases:
//
//  * event churn: a ring of self-rescheduling callbacks plus a
//    schedule-then-cancel decoy per step, isolating the scheduler's
//    schedule/cancel/heap paths with no packet work at all;
//  * packet ping: packets circulating through a sim::Link, so every event
//    carries a pooled packet payload end to end.
//
// Scalars: events_per_sec and sim_seconds_per_wall_sec (churn phase),
// packets_per_sec (ping phase). Wall time is read through obs::WallClock —
// the tree's one sanctioned clock seam — and feeds only these scalars,
// never the simulation itself, which stays deterministic from seeds.
#include <cstdio>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/sim/link.hpp"
#include "syndog/sim/scheduler.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;
using util::SimTime;

namespace {

/// Self-sustaining churn: reschedules itself 1 us out and
/// schedules-then-cancels a decoy, so every executed event exercises the
/// schedule, eager heap-removal, and pop paths.
struct Churn {
  sim::Scheduler* sched;
  void operator()() const {
    const sim::EventId decoy =
        sched->schedule_after(SimTime::microseconds(2), [] {});
    sched->cancel(decoy);
    sched->schedule_after(SimTime::microseconds(1), Churn{sched});
  }
};

double run_churn_phase(const obs::WallClock& clock) {
  constexpr std::uint64_t kRingSize = 64;
  constexpr std::uint64_t kWarmupEvents = 200'000;
  constexpr std::uint64_t kMeasuredEvents = 4'000'000;

  sim::Scheduler sched;
  for (std::uint64_t i = 0; i < kRingSize; ++i) {
    sched.schedule_after(SimTime::microseconds(static_cast<std::int64_t>(i) + 1),
                         Churn{&sched});
  }
  sched.run_all(kWarmupEvents);  // reach the steady-state footprint

  const SimTime sim_start = sched.now();
  const std::int64_t wall_start = clock.now_ns();
  sched.run_all(kMeasuredEvents);
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;
  const double sim_s = (sched.now() - sim_start).to_seconds();

  const double events_per_sec =
      static_cast<double>(kMeasuredEvents) / wall_s;
  const double sim_per_wall = sim_s / wall_s;
  std::printf("event churn : %10.3e events/s   (%.2f s wall for %.1fM "
              "events, %.1f sim-s/wall-s)\n",
              events_per_sec, wall_s,
              static_cast<double>(kMeasuredEvents) / 1e6, sim_per_wall);
  bench::sidecar()->scalar("events_per_sec", events_per_sec);
  bench::sidecar()->scalar("sim_seconds_per_wall_sec", sim_per_wall);
  return events_per_sec;
}

struct Pinger {
  sim::Link* link = nullptr;
  std::uint64_t deliveries = 0;
  void operator()(const net::Packet& pkt) {
    ++deliveries;
    link->send(pkt);
  }
};

double run_ping_phase(const obs::WallClock& clock) {
  constexpr std::uint64_t kInFlight = 32;
  constexpr std::uint64_t kWarmupEvents = 100'000;
  constexpr std::uint64_t kMeasuredEvents = 1'000'000;

  sim::Scheduler sched;
  Pinger pinger;
  sim::LinkParams params;
  params.delay = SimTime::milliseconds(1);
  sim::Link link(
      sched, params, [&pinger](const net::Packet& pkt) { pinger(pkt); }, 1);
  pinger.link = &link;

  net::TcpPacketSpec spec;
  spec.src_ip = net::Ipv4Address(10, 1, 0, 1);
  spec.dst_ip = net::Ipv4Address(198, 51, 100, 10);
  spec.src_port = 1024;
  spec.dst_port = 80;
  const net::Packet pkt = net::make_syn(spec);
  for (std::uint64_t i = 0; i < kInFlight; ++i) link.send(pkt);

  sched.run_all(kWarmupEvents);

  const std::uint64_t delivered_before = pinger.deliveries;
  const std::int64_t wall_start = clock.now_ns();
  sched.run_all(kMeasuredEvents);
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;
  const double packets =
      static_cast<double>(pinger.deliveries - delivered_before);

  const double packets_per_sec = packets / wall_s;
  std::printf("packet ping : %10.3e packets/s  (%.2f s wall for %.1fM "
              "pooled deliveries over a 1 ms link)\n",
              packets_per_sec, wall_s, packets / 1e6);
  bench::sidecar()->scalar("packets_per_sec", packets_per_sec);
  return packets_per_sec;
}

}  // namespace

int main() {
  bench::print_header(
      "sim_throughput",
      "DES hot-path throughput (allocation-free scheduler)",
      "perf trajectory for the paper's low-overhead claim; see "
      "docs/PERFORMANCE.md");

  const obs::WallClock clock;
  run_churn_phase(clock);
  run_ping_phase(clock);

  std::printf(
      "\nexpected: events/s in the 1e7 order on commodity hardware, ~2x\n"
      "the pre-arena scheduler on this same workload (~4.5e6); absolute\n"
      "numbers vary by machine -- track the trajectory, not the point\n"
      "value. See docs/PERFORMANCE.md.\n");
  return 0;
}
