// Comparator study: the paper chooses the non-parametric CUSUM over
// model-based and memoryless alternatives (§3.2). All detectors consume
// the same normalized observation sequence {Xn} that SYN-dog computes;
// only the decision rule differs:
//
//   np-cusum          the paper's Eq. (2)-(4)
//   cusum-llr         parametric (Gaussian) CUSUM — needs the model
//   glr               windowed GLR — unknown shift size, O(window) state
//   ewma-chart        EWMA control chart with adaptive baseline
//   shewhart          per-sample 3-sigma test (no memory)
//   static-threshold  raw per-period threshold (needs per-site tuning)
#include <cstdio>
#include <memory>

#include "common/experiment.hpp"
#include "syndog/detect/charts.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/detect/evaluator.hpp"
#include "syndog/detect/glr.hpp"
#include "syndog/detect/shiryaev.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

/// Normalized {Xn} series of one trial, exactly as SynDog derives it.
std::vector<double> x_series(const bench::FloodTrial& trial) {
  core::SynDog dog(core::SynDogParams::paper_defaults());
  std::vector<double> xs;
  xs.reserve(trial.out_syn.size());
  for (std::size_t i = 0; i < trial.out_syn.size(); ++i) {
    xs.push_back(dog.observe_period(trial.out_syn[i],
                                    trial.in_syn_ack[i]).x);
  }
  return xs;
}

using Factory = std::function<std::unique_ptr<detect::ChangeDetector>()>;

std::vector<std::pair<std::string, Factory>> detectors() {
  return {
      {"np-cusum (paper)",
       [] {
         return std::make_unique<detect::NonParametricCusum>(
             detect::NonParametricCusumParams{0.35, 1.05});
       }},
      {"cusum-llr",
       [] {
         // Model: normal mean ~0.05, attack mean ~0.5, sigma ~0.1.
         return std::make_unique<detect::ParametricCusum>(
             detect::ParametricCusumParams{0.05, 0.5, 0.1, 10.0});
       }},
      {"ewma-chart",
       [] {
         return std::make_unique<detect::EwmaChart>(
             detect::EwmaChartParams{});
       }},
      {"shewhart",
       [] {
         return std::make_unique<detect::ShewhartChart>(
             detect::ShewhartParams{});
       }},
      {"static-threshold(X>0.4)",
       [] { return std::make_unique<detect::StaticThreshold>(0.4); }},
      {"shiryaev-roberts",
       [] {
         return std::make_unique<detect::ShiryaevRoberts>(
             detect::ShiryaevRobertsParams{});
       }},
      {"glr (window 60)",
       [] {
         // sigma ~ the normal-mode sigma of Xn at UNC (~0.03-0.05).
         return std::make_unique<detect::GlrDetector>(
             detect::GlrParams{0.05, 0.05, 60, 12.0});
       }},
  };
}

}  // namespace

int main() {
  bench::print_header(
      "detector_comparison",
      "Comparator study -- decision rules on the same normalized series",
      "the paper argues for non-parametric CUSUM: sequential memory "
      "without a traffic model");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  constexpr int kTrials = 15;

  util::TextTable table({"detector", "fi (SYN/s)", "detect prob",
                         "mean delay [t0]", "false alarms"});
  for (const double fi : {40.0, 60.0, 120.0}) {
    for (const auto& [name, factory] : detectors()) {
      const detect::EnsembleResult r = detect::evaluate_ensemble(
          factory,
          [&](std::uint64_t t) {
            bench::EnsembleConfig cfg;
            cfg.seed = 1000;
            const bench::FloodTrial trial = bench::make_flood_trial(
                spec, fi, cfg, static_cast<int>(t));
            return detect::TrialSpec{
                x_series(trial),
                static_cast<std::size_t>(trial.onset_period)};
          },
          kTrials);
      table.add_row({name, util::format_double(fi, 0),
                     util::format_double(r.detection_probability, 2),
                     util::format_double(r.mean_detection_delay, 2),
                     std::to_string(r.total_false_alarms)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: np-cusum detects everything with no false alarms.\n"
      "shewhart/static react instantly to big floods but miss the slow\n"
      "accumulation near the floor (fi=40) that CUSUM's memory catches;\n"
      "cusum-llr works only as long as its Gaussian model fits.\n");
  return 0;
}
