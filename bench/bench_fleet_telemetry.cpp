// Long-horizon fleet telemetry campaign (ROADMAP item 5; the production
// regime of paper §4.2.3): hundreds of SYN-dog stubs streaming days of
// sim time into a telemetry::TelemetrySink via core::FleetRecorder
// fast-forward, with diurnally drifting arrival rates.
//
// What it verifies, as --expect-validated sidecar scalars:
//   * EWMA K-bar tracking: the relative error between K(n) and the true
//     (time-varying) SYN/ACK rate stays small across the diurnal cycle.
//   * Eq. (5) at production horizons: the realized mean time between
//     false alarms across the fleet vs the Brook & Evans Markov-chain
//     prediction (detect::cusum_average_run_length) evaluated at the
//     campaign's measured Xn moments. The paper's universal (a, N) never
//     false-alarms at these horizons, so the campaign runs a deliberately
//     tight tuning to make the rate measurable (cf.
//     bench_eq5_false_alarm_scaling, which does the same per-threshold).
//   * Drain determinism: the same seed through the inline reference and
//     the consumer-thread drain produces byte-identical syndog-tsf/1
//     files ("drain_equal"), with zero queue drops.
//   * A 10-minute flood on five stubs of one AS on day 2 must be caught
//     ("flood_detected"), and the file's alarm-timeline rollup must agree
//     with the in-run edge count ("timeline_matches").
//
// Pass --deterministic to suppress the wall-clock throughput scalars so
// two runs emit byte-identical sidecars (tests/sidecar_determinism.cmake).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/core/fleet.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/detect/arl.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/telemetry/rollup.hpp"
#include "syndog/telemetry/sink.hpp"
#include "syndog/telemetry/tsf.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;

namespace {

constexpr std::uint64_t kSeed = 20020604;
constexpr int kAgents = 240;
constexpr int kAgentsPerAs = 20;  // 12 stub ASes
constexpr double kSimDays = 2.0;
constexpr std::int64_t kT0Seconds = 20;
constexpr std::int64_t kPeriods =
    static_cast<std::int64_t>(kSimDays * 86400.0) / kT0Seconds;  // 8640
constexpr std::int64_t kHeartbeatPeriods = 45;  // one full sample / 15 min
constexpr std::int64_t kWarmupPeriods = 60;     // let K converge first

// Site model: per-agent base SYN/ACK level (small stub sites, so Xn's
// variance is large enough for false alarms to be measurable), modulated
// sinusoidally over the day with a per-AS phase; ~5% of handshakes go
// unanswered (the paper's normal-drift c).
constexpr double kDiurnalAmplitude = 0.4;
constexpr double kUnansweredFraction = 0.05;

// Deliberately tight CUSUM tuning (cf. the bench comment above): with
// sigma(Xn) ~ sqrt(c/lambda) ~ 0.05, a = 2c keeps one sigma of headroom
// and N sits five sigmas up — false alarms are rare but countable at
// fleet × days scale.
constexpr double kOffsetA = 0.10;
constexpr double kThresholdN = 0.25;

// Flood scenario: five stubs of the last AS go hostile for 10 minutes on
// day 2 at triple their site rate — far above f_min for this tuning.
constexpr int kFloodFirstAgent = 220;
constexpr int kFloodAgents = 5;
constexpr std::int64_t kFloodStartPeriod = 6480;  // t = 1.5 days
constexpr std::int64_t kFloodPeriods = 30;        // 10 minutes

double base_rate(int agent) {
  return 14.0 + 1.5 * static_cast<double>(agent % 12);
}

/// Instantaneous SYN/ACK rate (per period) for `agent` at period `n`.
double site_rate(int agent, std::int64_t period) {
  const double t_days =
      static_cast<double>(period * kT0Seconds) / 86400.0;
  const double phase = 2.0 * std::numbers::pi *
                       static_cast<double>(agent / kAgentsPerAs) / 12.0;
  return base_rate(agent) *
         (1.0 + kDiurnalAmplitude *
                    std::sin(2.0 * std::numbers::pi * t_days + phase));
}

bool is_flood_agent(int agent) {
  return agent >= kFloodFirstAgent && agent < kFloodFirstAgent + kFloodAgents;
}

bool in_flood_window(std::int64_t period) {
  return period >= kFloodStartPeriod &&
         period < kFloodStartPeriod + kFloodPeriods;
}

// Histogram of the true site rate across clean post-warm-up periods.
// The false-alarm rate depends sharply on the instantaneous lambda (the
// unanswered count is Poisson(c*lambda), scaled by 1/K ~ 1/lambda), so
// Eq. (5) must be evaluated per lambda and *rate*-averaged — the
// realized rate is the time average of instantaneous rates, and the
// low-lambda night phase dominates it.
constexpr double kLambdaLo = 6.0;
constexpr double kLambdaHi = 48.0;
constexpr int kLambdaBins = 64;

struct CampaignResult {
  stats::OnlineStats x_stats;       ///< clean-agent Xn after warm-up
  std::vector<std::int64_t> lambda_hist =
      std::vector<std::int64_t>(kLambdaBins);
  stats::OnlineStats k_rel_err;     ///< |K - lambda| / lambda at heartbeats
  std::int64_t false_alarm_edges = 0;
  std::int64_t clean_periods = 0;   ///< clean-agent post-warm-up periods
  std::int64_t total_rising_edges = 0;
  int flood_detected = 0;
  telemetry::SinkStats sink_stats;
  std::uint64_t file_bytes = 0;
  std::string path;
};

CampaignResult run_campaign(telemetry::DrainMode mode,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  telemetry::TelemetrySinkConfig cfg;
  cfg.mode = mode;
  cfg.queue_capacity = 1 << 16;
  cfg.block_capacity = 256;
  CampaignResult res;
  res.path = path;
  {
    telemetry::TelemetrySink sink(out, cfg);
    core::FleetRecorder fleet(sink,
                              core::FleetRecorder::Cadence{kHeartbeatPeriods});

    core::SynDogParams params;
    params.a = kOffsetA;
    params.threshold = kThresholdN;
    params.statistic_cap = 4.0 * kThresholdN;
    params.observation_period = util::SimTime::seconds(kT0Seconds);
    for (int a = 0; a < kAgents; ++a) {
      char name[32];
      std::snprintf(name, sizeof name, "stub%03d", a);
      fleet.add_agent(name,
                      static_cast<std::uint32_t>(64512 + a / kAgentsPerAs),
                      params);
    }

    std::vector<util::Rng> rngs;
    rngs.reserve(kAgents);
    for (int a = 0; a < kAgents; ++a) {
      rngs.push_back(util::Rng::child(kSeed, static_cast<std::uint64_t>(a)));
    }
    std::vector<bool> was_alarming(kAgents, false);
    std::vector<bool> flood_caught(kAgents, false);

    for (std::int64_t period = 0; period < kPeriods; ++period) {
      const util::SimTime at =
          util::SimTime::seconds(kT0Seconds * (period + 1));
      for (int a = 0; a < kAgents; ++a) {
        const double lambda = site_rate(a, period);
        const std::int64_t syn_acks = rngs[a].poisson(lambda);
        std::int64_t syns =
            syn_acks + rngs[a].poisson(kUnansweredFraction * lambda);
        const bool flooding = is_flood_agent(a) && in_flood_window(period);
        if (flooding) syns += rngs[a].poisson(3.0 * lambda);
        const core::PeriodReport report =
            fleet.observe(static_cast<std::size_t>(a), syns, syn_acks, at);

        const bool rising = report.alarm && !was_alarming[a];
        was_alarming[a] = report.alarm;
        if (rising) ++res.total_rising_edges;
        if (is_flood_agent(a)) {
          // Detection bookkeeping only; floods are not false alarms.
          if (rising && period >= kFloodStartPeriod &&
              period < kFloodStartPeriod + kFloodPeriods + 5) {
            flood_caught[a] = true;
          }
          continue;
        }
        if (period >= kWarmupPeriods) {
          res.x_stats.add(report.x);
          const int bin = std::clamp(
              static_cast<int>((lambda - kLambdaLo) / (kLambdaHi - kLambdaLo) *
                               kLambdaBins),
              0, kLambdaBins - 1);
          ++res.lambda_hist[static_cast<std::size_t>(bin)];
          ++res.clean_periods;
          if (rising) ++res.false_alarm_edges;
          if (period % kHeartbeatPeriods == 0) {
            res.k_rel_err.add(std::abs(report.k_estimate - lambda) / lambda);
          }
        }
      }
    }
    sink.finish();
    res.sink_stats = sink.stats();
    for (int a = kFloodFirstAgent; a < kFloodFirstAgent + kFloodAgents; ++a) {
      if (flood_caught[a]) ++res.flood_detected;
    }
  }
  out.close();
  std::ifstream check(path, std::ios::binary | std::ios::ate);
  res.file_bytes = static_cast<std::uint64_t>(check.tellg());
  return res;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic =
      argc > 1 && std::strcmp(argv[1], "--deterministic") == 0;
  bench::print_header(
      "fleet_telemetry",
      "Fleet telemetry campaign -- 240 stubs x 2 days, diurnal drift",
      "Eq. (5) false-alarm rate at production horizons; EWMA K tracking; "
      "byte-identical threaded drain");

  const char* dir = std::getenv("SYNDOG_BENCH_DIR");
  const std::string base = dir != nullptr ? std::string(dir) + "/" : "";
  const std::string path_inline = base + "fleet_telemetry_inline.tsf";
  const std::string path_threaded = base + "fleet_telemetry_threaded.tsf";

  const obs::WallClock clock;
  const std::int64_t wall_start = clock.now_ns();
  const CampaignResult inline_run =
      run_campaign(telemetry::DrainMode::kInline, path_inline);
  const CampaignResult threaded_run =
      run_campaign(telemetry::DrainMode::kThreaded, path_threaded);
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;

  const bool drain_equal = slurp(path_inline) == slurp(path_threaded);

  // Eq. (5) predictions from the campaign's own measurements. Two
  // kernels for the same Brook & Evans Markov chain:
  //   * Gaussian at the pooled Xn moments — the textbook Eq. (5) design
  //     number, which overshoots by ~100x here because Xn at a small
  //     stub site is a scaled Poisson whose right tail the Gaussian
  //     cannot represent;
  //   * scaled-Poisson per lambda bin, rate-averaged over the realized
  //     lambda histogram — the count-aware prediction this bench
  //     validates the realized rate against.
  detect::ArlSpec gauss;
  gauss.mean = inline_run.x_stats.mean();
  gauss.stddev = inline_run.x_stats.stddev();
  gauss.offset = kOffsetA;
  gauss.threshold = kThresholdN;
  gauss.states = 400;
  const double predicted_arl_gaussian =
      detect::cusum_average_run_length(gauss);
  double weighted_rate = 0.0;
  double rate_weight = 0.0;
  double arl_bin_min = 0.0;
  double arl_bin_max = 0.0;
  for (int bin = 0; bin < kLambdaBins; ++bin) {
    const std::int64_t count =
        inline_run.lambda_hist[static_cast<std::size_t>(bin)];
    if (count == 0) continue;
    const double lambda =
        kLambdaLo + (bin + 0.5) * (kLambdaHi - kLambdaLo) / kLambdaBins;
    detect::PoissonArlSpec spec;
    spec.rate = kUnansweredFraction * lambda;
    spec.scale = 1.0 / lambda;  // K-bar tracks lambda (k_track_rel_err)
    spec.offset = kOffsetA;
    spec.threshold = kThresholdN;
    spec.states = 400;
    const double arl = detect::cusum_average_run_length(spec);
    const double weight = static_cast<double>(count);
    weighted_rate += weight / arl;
    rate_weight += weight;
    if (arl_bin_min == 0.0 || arl < arl_bin_min) arl_bin_min = arl;
    if (arl > arl_bin_max) arl_bin_max = arl;
  }
  const double predicted_arl = rate_weight / weighted_rate;
  const double realized_arl =
      inline_run.false_alarm_edges == 0
          ? static_cast<double>(inline_run.clean_periods)
          : static_cast<double>(inline_run.clean_periods) /
                static_cast<double>(inline_run.false_alarm_edges);
  const double arl_ratio = realized_arl / predicted_arl;

  // Read the inline file back: the rollup layer must agree with what the
  // run itself counted, and the K-bar drift series feeds the sidecar.
  std::ifstream tsf_in(path_inline, std::ios::binary);
  const telemetry::TsfReader reader(tsf_in);
  const auto timeline = telemetry::alarm_timeline(reader, "alarm");
  const bool timeline_matches =
      reader.end() == telemetry::ReadEnd::kEof &&
      static_cast<std::int64_t>(timeline.rising_edges) ==
          inline_run.total_rising_edges;
  const auto drift = telemetry::metric_drift(reader, "k",
                                             util::SimTime::hours(1));
  std::vector<double> kbar_t_s;
  std::vector<double> kbar_mean;
  kbar_t_s.reserve(drift.size());
  kbar_mean.reserve(drift.size());
  for (const auto& point : drift) {
    kbar_t_s.push_back(point.bucket_start.to_seconds());
    kbar_mean.push_back(point.mean);
  }

  std::printf("fleet: %d agents in %d ASes, %lld periods (%g days), "
              "heartbeat every %lld periods\n",
              kAgents, kAgents / kAgentsPerAs,
              static_cast<long long>(kPeriods), kSimDays,
              static_cast<long long>(kHeartbeatPeriods));
  std::printf("tsf file: %llu bytes, %llu samples, %llu blocks; "
              "drain_equal=%s, drops=%llu\n",
              static_cast<unsigned long long>(inline_run.file_bytes),
              static_cast<unsigned long long>(inline_run.sink_stats.drained),
              static_cast<unsigned long long>(inline_run.sink_stats.blocks),
              drain_equal ? "yes" : "NO",
              static_cast<unsigned long long>(
                  threaded_run.sink_stats.dropped));
  std::printf("Xn: mean %.4f sigma %.4f over %lld clean periods; "
              "K rel err %.4f\n",
              inline_run.x_stats.mean(), inline_run.x_stats.stddev(),
              static_cast<long long>(inline_run.clean_periods),
              inline_run.k_rel_err.mean());
  std::printf("false alarms: %lld edges -> realized ARL %.0f periods; "
              "Poisson-kernel Brook-Evans predicts %.0f (ratio %.2f)\n",
              static_cast<long long>(inline_run.false_alarm_edges),
              realized_arl, predicted_arl, arl_ratio);
  std::printf("  per-lambda-bin ARL %.0f..%.0f; Gaussian-kernel "
              "prediction %.0f (off %.0fx -- scaled-Poisson tail)\n",
              arl_bin_min, arl_bin_max, predicted_arl_gaussian,
              predicted_arl_gaussian / predicted_arl);
  std::printf("flood: %d/%d stubs detected; timeline_matches=%s\n",
              inline_run.flood_detected, kFloodAgents,
              timeline_matches ? "yes" : "NO");
  if (!deterministic) {
    std::printf("wall: %.2f s (%.2f M observe/s)\n", wall_s,
                static_cast<double>(kPeriods) * kAgents / wall_s / 1e6);
  }

  auto& sidecar = *bench::sidecar();
  sidecar.scalar("fleet_agents", kAgents);
  sidecar.scalar("sim_days", kSimDays);
  sidecar.scalar("periods_per_agent", static_cast<double>(kPeriods));
  sidecar.scalar("heartbeat_periods",
                 static_cast<double>(kHeartbeatPeriods));
  sidecar.scalar("samples_written",
                 static_cast<double>(inline_run.sink_stats.drained));
  sidecar.scalar("file_bytes", static_cast<double>(inline_run.file_bytes));
  sidecar.scalar("drain_equal", drain_equal ? 1.0 : 0.0);
  sidecar.scalar("sink_dropped",
                 static_cast<double>(threaded_run.sink_stats.dropped));
  sidecar.scalar("x_mean", inline_run.x_stats.mean());
  sidecar.scalar("x_stddev", inline_run.x_stats.stddev());
  sidecar.scalar("k_track_rel_err", inline_run.k_rel_err.mean());
  sidecar.scalar("false_alarm_edges",
                 static_cast<double>(inline_run.false_alarm_edges));
  sidecar.scalar("clean_periods",
                 static_cast<double>(inline_run.clean_periods));
  sidecar.scalar("realized_arl_periods", realized_arl);
  sidecar.scalar("predicted_arl_periods", predicted_arl);
  sidecar.scalar("predicted_arl_gaussian", predicted_arl_gaussian);
  sidecar.scalar("arl_bin_min", arl_bin_min);
  sidecar.scalar("arl_bin_max", arl_bin_max);
  sidecar.scalar("arl_ratio", arl_ratio);
  sidecar.scalar("flood_agents", kFloodAgents);
  sidecar.scalar("flood_detected",
                 static_cast<double>(inline_run.flood_detected));
  sidecar.scalar("timeline_matches", timeline_matches ? 1.0 : 0.0);
  sidecar.series("kbar_t_s", kbar_t_s);
  sidecar.series("kbar_mean", kbar_mean);
  if (!deterministic) {
    sidecar.scalar("observe_per_sec",
                   static_cast<double>(kPeriods) * kAgents / wall_s);
  }
  return drain_equal && timeline_matches ? 0 : 1;
}
