// Flash-crowd discrimination.
//
// A raw SYN-rate threshold cannot tell a flash crowd (legitimate surge)
// from a flood; SYN-dog can, because legitimate SYNs bring their
// SYN/ACKs with them and the normalized difference stays at c. This
// bench sweeps surge magnitudes and compares against spoofed floods of
// equal extra volume — and also documents the one caveat: an extreme,
// instantaneous surge transiently inflates Xn until the EWMA level
// estimate K catches up, so the estimator memory alpha bounds the
// surge-size headroom.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

struct Outcome {
  bool alarmed = false;
  double peak_y = 0.0;
};

Outcome run_surge(double multiplier, double alpha, std::uint64_t seed) {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.disruptions_per_hour = 0.0;
  trace::ConnectionTrace background =
      trace::generate_site_trace(spec, seed);
  trace::ConnectionTrace surge = trace::generate_flash_crowd(
      spec, SimTime::minutes(10), SimTime::minutes(5), multiplier, seed);
  const trace::PeriodSeries ps = trace::extract_periods(
      trace::merge_traces(std::move(background), std::move(surge)),
      trace::kObservationPeriod);
  core::SynDogParams params = core::SynDogParams::paper_defaults();
  params.ewma_alpha = alpha;
  const auto reports =
      core::run_over_series(params, ps.out_syn, ps.in_syn_ack);
  Outcome out;
  for (const auto& r : reports) {
    out.alarmed |= r.alarm;
    out.peak_y = std::max(out.peak_y, r.y);
  }
  return out;
}

Outcome run_flood(double extra_rate, std::uint64_t seed) {
  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.disruptions_per_hour = 0.0;
  trace::PeriodSeries ps = trace::extract_periods(
      trace::generate_site_trace(spec, seed), trace::kObservationPeriod);
  attack::FloodSpec flood;
  flood.rate = extra_rate;
  flood.start = SimTime::minutes(10);
  flood.duration = SimTime::minutes(5);
  util::Rng rng(seed);
  ps.add_outbound_syns(trace::bucket_times(
      attack::generate_flood_times(flood, rng), ps.period, ps.size()));
  const auto reports = core::run_over_series(
      core::SynDogParams::paper_defaults(), ps.out_syn, ps.in_syn_ack);
  Outcome out;
  for (const auto& r : reports) {
    out.alarmed |= r.alarm;
    out.peak_y = std::max(out.peak_y, r.y);
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "flash_crowd",
      "Flash crowd vs flood discrimination (UNC workload)",
      "equal extra SYN volume: legitimate surges must stay quiet, "
      "spoofed floods must alarm");

  util::TextTable table({"event (extra volume)", "alarm?", "peak yn / N"});
  for (const double multiplier : {2.0, 3.0, 5.0, 10.0}) {
    const double extra_rate =
        (multiplier - 1.0) * trace::site_spec(trace::SiteId::kUnc)
            .outbound_rate;
    const Outcome surge = run_surge(multiplier, 0.9, 42);
    table.add_row(
        {util::strprintf("flash crowd %.0fx (+%.0f conn/s)", multiplier,
                         extra_rate),
         surge.alarmed ? "ALARM (false)" : "quiet",
         util::format_double(surge.peak_y, 3) + " / 1.05"});
    const Outcome flood = run_flood(extra_rate, 42);
    table.add_row(
        {util::strprintf("spoofed flood    (+%.0f SYN/s)", extra_rate),
         flood.alarmed ? "ALARM (true)" : "missed",
         util::format_double(flood.peak_y, 3) + " / 1.05"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\n-- the caveat: K-estimator memory vs extreme instant surges --\n");
  util::TextTable caveat({"surge", "alpha=0.98", "alpha=0.9", "alpha=0.6"});
  for (const double multiplier : {5.0, 10.0, 20.0}) {
    std::vector<std::string> row{
        util::strprintf("%.0fx flash crowd", multiplier)};
    for (const double alpha : {0.98, 0.9, 0.6}) {
      const Outcome o = run_surge(multiplier, alpha, 42);
      row.push_back(util::strprintf("peak %.2f%s", o.peak_y,
                                    o.alarmed ? " ALARM" : ""));
    }
    caveat.add_row(row);
  }
  std::printf("%s", caveat.to_string().c_str());
  std::printf(
      "\nexpected: floods alarm at every volume while 2-5x crowds stay\n"
      "quiet. Very large instant surges inflate Xn until K adapts; a\n"
      "smaller alpha (faster level tracking) absorbs them, at no cost to\n"
      "flood detection (the flood draws no SYN/ACKs for K to track).\n");
  return 0;
}
