// Fault matrix: detection robustness across degraded first-mile conditions.
//
// The paper's experiments assume a healthy monitoring path: taps that see
// every packet, links that only lose what the loss model says, a timer
// that never stalls. This bench runs the live DES across a grid of
// first-mile faults (fault::FaultSchedule) x flood rates {none, Table-2
// floor 37 SYN/s, 80 SYN/s} and reports, per cell, whether SYN-dog still
// detects, how much later, and what the agent's degradation machinery
// (gap accounting, SYN/ACK-collapse gating, tap-outage quarantine)
// absorbed. The zero-fault column must reproduce the clean-path results,
// and no fault may produce a false alarm at rate 0 — both are asserted by
// CI via check_bench_json.py ranges on the sidecar.
#include <cstdio>
#include <string>
#include <vector>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/fault/chaos.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

constexpr double kT0Seconds = 20.0;
constexpr int kSimMinutes = 10;
constexpr double kBackgroundRate = 5.0;  // conn/s, ~95 SYN/ACKs per period
const SimTime kOnset = SimTime::minutes(4);

struct FaultCase {
  const char* id;
  const char* description;
  fault::FaultSchedule (*make)();
};

fault::FaultSchedule make_none() { return {}; }

fault::FaultSchedule make_loss20() {
  fault::FaultSchedule s;
  s.burst_loss(fault::FaultTarget::kDownlink, SimTime::zero(),
               SimTime::minutes(kSimMinutes), 0.2);
  return s;
}

fault::FaultSchedule make_flap3() {
  fault::FaultSchedule s;
  s.link_flap(fault::FaultTarget::kDownlink, SimTime::seconds(120),
              SimTime::seconds(180));
  return s;
}

fault::FaultSchedule make_dup_jitter() {
  fault::FaultSchedule s;
  s.duplication(fault::FaultTarget::kDownlink, SimTime::seconds(120),
                SimTime::minutes(8), 0.15);
  s.delay_jitter(fault::FaultTarget::kDownlink, SimTime::seconds(120),
                 SimTime::minutes(8), SimTime::milliseconds(200));
  return s;
}

fault::FaultSchedule make_tap_outage() {
  fault::FaultSchedule s;
  s.tap_outage(SimTime::seconds(120), SimTime::seconds(160));
  return s;
}

fault::FaultSchedule make_asym10() {
  fault::FaultSchedule s;
  s.asymmetric_route(SimTime::seconds(60), SimTime::minutes(kSimMinutes),
                     0.1);
  return s;
}

constexpr FaultCase kFaultCases[] = {
    {"none", "clean path (control column)", make_none},
    {"loss20", "20% sustained downlink loss", make_loss20},
    {"flap3", "downlink dead for 3 periods (min 2-3)", make_flap3},
    {"dupjitter", "15% duplication + 200 ms jitter", make_dup_jitter},
    {"tapout", "sniffer taps dead for 2 periods", make_tap_outage},
    {"asym10", "10% of SYN/ACKs bypass the inbound tap", make_asym10},
};

struct CellResult {
  bool detected = false;
  std::int64_t delay_periods = -1;
  int false_alarm_periods = 0;
  std::int64_t gap_periods = 0;
  std::int64_t blind_periods = 0;
  std::int64_t recoveries = 0;
  core::AgentHealth health = core::AgentHealth::kHealthy;
};

const char* health_name(core::AgentHealth h) {
  switch (h) {
    case core::AgentHealth::kHealthy: return "healthy";
    case core::AgentHealth::kDegraded: return "degraded";
    case core::AgentHealth::kBlind: return "blind";
  }
  return "?";
}

CellResult run_cell(const FaultCase& fc, double fi, std::uint64_t seed) {
  sim::StubNetworkParams params;
  params.num_hosts = 10;
  params.cloud.no_answer_probability = 0.05;
  params.seed = seed;
  sim::StubNetworkSim network(params);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  fault::ChaosController chaos(network, fc.make(), seed ^ 0xc4a05);
  chaos.set_outage_listener([&agent](SimTime, bool active) {
    agent.notify_sniffer_outage(active);
  });

  // Same Poisson background in every cell (seed does not vary with the
  // fault or the rate), so columns differ only by what is injected.
  util::Rng rng(seed);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < kSimMinutes * 60.0) {
    t += rng.exponential_mean(1.0 / kBackgroundRate);
    starts.push_back(SimTime::from_seconds(t));
  }
  network.schedule_outbound_background(starts);

  if (fi > 0.0) {
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start = kOnset;
    flood.duration = SimTime::minutes(5);
    util::Rng frng(seed ^ 0xf100d);
    network.launch_flood(4, attack::generate_flood_times(flood, frng),
                         net::Ipv4Address(198, 51, 100, 7), 80,
                         *net::Ipv4Prefix::parse("203.0.113.0/24"));
  }
  network.run_until(SimTime::minutes(kSimMinutes));

  const std::int64_t onset_period =
      fi > 0.0 ? kOnset / core::SynDogParams{}.observation_period
               : static_cast<std::int64_t>(kSimMinutes * 60 / kT0Seconds);
  CellResult out;
  out.detected = agent.ever_alarmed();
  if (out.detected) {
    out.delay_periods = agent.first_alarm_period() - onset_period;
  }
  for (const core::PeriodReport& r : agent.history()) {
    if (r.alarm && r.period_index < onset_period) ++out.false_alarm_periods;
  }
  out.gap_periods = agent.detector().gap_periods();
  out.blind_periods = agent.blind_periods();
  out.recoveries = agent.recoveries();
  out.health = agent.health();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "fault_matrix",
      "Detection robustness under first-mile faults (extension)",
      "fault grid x flood rates on the live DES; degraded conditions must "
      "not produce false alarms, and real floods must stay detectable");

  bench::Sidecar& side = *bench::sidecar();
  util::TextTable table({"fault", "fi (SYN/s)", "detected", "delay [t0]",
                         "false alarms", "gaps", "blind", "recoveries",
                         "health at end"});
  for (const FaultCase& fc : kFaultCases) {
    for (const double fi : {0.0, 37.0, 80.0}) {
      const CellResult cell = run_cell(fc, fi, 11);
      table.add_row(
          {fc.id, util::format_double(fi, 0),
           fi > 0.0 ? (cell.detected ? "yes" : "NO")
                    : (cell.detected ? "FALSE ALARM" : "quiet"),
           cell.detected
               ? util::format_double(static_cast<double>(cell.delay_periods),
                                     0)
               : "-",
           std::to_string(cell.false_alarm_periods),
           std::to_string(cell.gap_periods),
           std::to_string(cell.blind_periods),
           std::to_string(cell.recoveries), health_name(cell.health)});

      const std::string key =
          std::string(fc.id) + "_fi" + util::format_double(fi, 0);
      side.scalar("detected_" + key, cell.detected ? 1.0 : 0.0);
      side.scalar("delay_" + key,
                  static_cast<double>(cell.delay_periods));
      side.scalar("false_alarms_" + key,
                  static_cast<double>(cell.false_alarm_periods));
      side.scalar("gap_periods_" + key,
                  static_cast<double>(cell.gap_periods));
    }
  }
  std::printf("%s", table.to_string().c_str());
  for (const FaultCase& fc : kFaultCases) {
    std::printf("  %-9s %s\n", fc.id, fc.description);
  }
  std::printf(
      "\nexpected: every fi>0 cell detects with small delay (the flood's\n"
      "normalized drift dwarfs every fault's); every fi=0 cell stays\n"
      "quiet -- the flap and tap-outage columns are absorbed by gap\n"
      "accounting and quarantine rather than alarming on the counter\n"
      "discontinuity. The zero-fault column must match the clean-path\n"
      "benches (CI pins it via check_bench_json.py --expect).\n");
  return 0;
}
