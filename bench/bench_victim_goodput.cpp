// Victim goodput vs flood rate — the context behind the paper's [8]
// figures: "the minimum flooding rate to overwhelm an unprotected server
// is 500 SYN packets per second. With a specialized firewall ... a
// server can be disabled by a flood of 14,000 SYNs per second."
//
// What determines the collapse point is the half-open budget per second:
// backlog_size / half_open_lifetime. A classic stack (small backlog,
// ~75 s timeout) collapses at a trickle; provisioned servers (big
// backlog) and aggressive recycling (SYN-cache-style short lifetimes)
// move the cliff by orders of magnitude — which is exactly why attackers
// need the aggregate rates the paper quotes, and why they spread the
// flood over many stubs to stay under each SYN-dog's floor.
#include <cstdio>

#include "common/experiment.hpp"
#include "common/victim_load.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

struct GoodputResult {
  double established_fraction = 0.0;
  std::uint64_t backlog_drops = 0;
};

/// 20 legit clients connect to the victim at ~10 conn/s total while a
/// spoofed flood of `flood_rate` SYN/s hits it for 2 minutes.
GoodputResult run(double flood_rate, std::size_t backlog,
                  util::SimTime half_open_timeout, std::uint64_t seed) {
  bench::VictimLoadConfig cfg;
  cfg.seed = seed;
  cfg.victim_params.backlog = backlog;
  cfg.victim_params.half_open_timeout = half_open_timeout;
  cfg.flood_rate = flood_rate;
  bench::VictimLoadHarness harness(cfg);
  harness.run_until(SimTime::minutes(2) + SimTime::seconds(10));

  return GoodputResult{
      static_cast<double>(harness.established_total()) /
          static_cast<double>(harness.legit_attempts()),
      harness.victim().stats().backlog_drops};
}

}  // namespace

int main() {
  bench::print_header(
      "victim_goodput",
      "Victim goodput vs flood rate (context for [8]'s 500 / 14,000 "
      "SYN/s)",
      "collapse point ~ backlog / half-open lifetime; defenses move it, "
      "never remove it");

  struct VictimClass {
    const char* label;
    std::size_t backlog;
    util::SimTime timeout;
    std::vector<double> rates;
  };
  const VictimClass classes[] = {
      {"classic stack (backlog 128, 75 s timeout, budget ~1.7/s)", 128,
       SimTime::seconds(75),
       {0, 1, 5, 50, 500}},
      {"provisioned (backlog 4096, 75 s timeout, budget ~55/s)", 4096,
       SimTime::seconds(75),
       {0, 25, 50, 100, 500}},
      {"aggressive recycle (backlog 4096, 3 s lifetime, budget ~1365/s)",
       4096, SimTime::seconds(3),
       {0, 500, 1000, 1400, 2500}},
  };

  for (const VictimClass& vc : classes) {
    std::printf("\n-- %s --\n", vc.label);
    util::TextTable table({"flood SYN/s", "legit handshakes completed",
                           "SYNs dropped (backlog full)"});
    for (const double rate : vc.rates) {
      const GoodputResult r = run(rate, vc.backlog, vc.timeout, 42);
      table.add_row(
          {util::format_double(rate, 0),
           util::format_double(100.0 * r.established_fraction, 1) + " %",
           util::format_count(static_cast<std::int64_t>(r.backlog_drops))});
    }
    std::printf("%s", table.to_string().c_str());
  }

  std::printf(
      "\nexpected: goodput stays ~100%% below each victim's half-open\n"
      "budget and collapses above it -- at ~2 SYN/s for the classic\n"
      "stack, ~55 for the provisioned one, and north of 1,300 with\n"
      "aggressive recycling. Scaling that defense race to [8]'s numbers\n"
      "(500 unprotected, 14,000 firewalled) is why distributed attackers\n"
      "need many stubs -- and why per-stub SYN-dog detection of shares as\n"
      "small as f_min caps how far they can spread (see\n"
      "bench_sensitivity_bound).\n");
  return 0;
}
