// Victim goodput vs flood rate — the context behind the paper's [8]
// figures: "the minimum flooding rate to overwhelm an unprotected server
// is 500 SYN packets per second. With a specialized firewall ... a
// server can be disabled by a flood of 14,000 SYNs per second."
//
// What determines the collapse point is the half-open budget per second:
// backlog_size / half_open_lifetime. A classic stack (small backlog,
// ~75 s timeout) collapses at a trickle; provisioned servers (big
// backlog) and aggressive recycling (SYN-cache-style short lifetimes)
// move the cliff by orders of magnitude — which is exactly why attackers
// need the aggregate rates the paper quotes, and why they spread the
// flood over many stubs to stay under each SYN-dog's floor.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

struct GoodputResult {
  double established_fraction = 0.0;
  std::uint64_t backlog_drops = 0;
};

/// 20 legit clients connect to the victim at ~10 conn/s total while a
/// spoofed flood of `flood_rate` SYN/s hits it for 2 minutes.
GoodputResult run(double flood_rate, std::size_t backlog,
                  util::SimTime half_open_timeout, std::uint64_t seed) {
  sim::StubNetworkParams params;
  params.num_hosts = 20;
  params.seed = seed;
  params.cloud.no_answer_probability = 0.0;
  sim::StubNetworkSim net(params);

  sim::TcpHostParams victim_params;
  victim_params.backlog = backlog;
  victim_params.half_open_timeout = half_open_timeout;
  sim::TcpHost& victim = net.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);

  util::Rng rng(seed);
  std::size_t legit = 0;
  for (double t = 1.0; t < 120.0; t += rng.exponential_mean(0.1)) {
    const auto client = static_cast<std::uint32_t>(
        rng.uniform_int(1, params.num_hosts));
    net.scheduler().schedule_at(SimTime::from_seconds(t),
                                [&net, client, ip = victim.ip()] {
                                  net.host(client).connect(ip, 80);
                                });
    ++legit;
  }

  if (flood_rate > 0.0) {
    attack::FloodSpec flood;
    flood.rate = flood_rate;
    flood.start = SimTime::zero();
    flood.duration = SimTime::minutes(2);
    util::Rng frng(seed ^ 0xf);
    net.launch_flood(1, attack::generate_flood_times(flood, frng),
                     victim.ip(), 80,
                     *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }
  net.run_until(SimTime::minutes(2) + SimTime::seconds(10));

  std::uint64_t established = 0;
  for (std::uint32_t h = 1; h <= params.num_hosts; ++h) {
    established += net.host(h).stats().established_as_client;
  }
  return GoodputResult{
      static_cast<double>(established) / static_cast<double>(legit),
      victim.stats().backlog_drops};
}

}  // namespace

int main() {
  bench::print_header(
      "victim_goodput",
      "Victim goodput vs flood rate (context for [8]'s 500 / 14,000 "
      "SYN/s)",
      "collapse point ~ backlog / half-open lifetime; defenses move it, "
      "never remove it");

  struct VictimClass {
    const char* label;
    std::size_t backlog;
    util::SimTime timeout;
    std::vector<double> rates;
  };
  const VictimClass classes[] = {
      {"classic stack (backlog 128, 75 s timeout, budget ~1.7/s)", 128,
       SimTime::seconds(75),
       {0, 1, 5, 50, 500}},
      {"provisioned (backlog 4096, 75 s timeout, budget ~55/s)", 4096,
       SimTime::seconds(75),
       {0, 25, 50, 100, 500}},
      {"aggressive recycle (backlog 4096, 3 s lifetime, budget ~1365/s)",
       4096, SimTime::seconds(3),
       {0, 500, 1000, 1400, 2500}},
  };

  for (const VictimClass& vc : classes) {
    std::printf("\n-- %s --\n", vc.label);
    util::TextTable table({"flood SYN/s", "legit handshakes completed",
                           "SYNs dropped (backlog full)"});
    for (const double rate : vc.rates) {
      const GoodputResult r = run(rate, vc.backlog, vc.timeout, 42);
      table.add_row(
          {util::format_double(rate, 0),
           util::format_double(100.0 * r.established_fraction, 1) + " %",
           util::format_count(static_cast<std::int64_t>(r.backlog_drops))});
    }
    std::printf("%s", table.to_string().c_str());
  }

  std::printf(
      "\nexpected: goodput stays ~100%% below each victim's half-open\n"
      "budget and collapses above it -- at ~2 SYN/s for the classic\n"
      "stack, ~55 for the provisioned one, and north of 1,300 with\n"
      "aggressive recycling. Scaling that defense race to [8]'s numbers\n"
      "(500 unprotected, 14,000 firewalled) is why distributed attackers\n"
      "need many stubs -- and why per-stub SYN-dog detection of shares as\n"
      "small as f_min caps how far they can spread (see\n"
      "bench_sensitivity_bound).\n");
  return 0;
}
