// Reproduces Figure 7: the dynamic behaviour of yn during SYN floods at
// UNC, for fi = 45, 60, 80 SYN/s. Paper: at 60 and 80 SYN/s the
// threshold is crossed in 4 and 2 periods; at 45 SYN/s the accumulation
// takes ~9 periods (~3 minutes).
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "fig7_unc_dynamics",
      "Figure 7 -- SYN flooding detection dynamics at UNC",
      "yn climbs steadily once the flood starts; slope grows with fi "
      "(paper: ~9 periods at 45 SYN/s, 4 at 60, 2 at 80)");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();

  const struct {
    double fi;
    const char* figure;
    const char* paper;
  } cases[] = {{45.0, "Fig. 7(a)", "~9 periods"},
               {60.0, "Fig. 7(b)", "4 periods"},
               {80.0, "Fig. 7(c)", "2 periods"}};

  for (const auto& c : cases) {
    bench::EnsembleConfig cfg;
    cfg.seed = 1000;
    cfg.start_min_s = 5 * 60.0;  // fixed onset for a readable figure
    cfg.start_max_s = 5 * 60.0;
    const std::vector<double> path =
        bench::statistic_path(spec, c.fi, params, cfg);
    bench::print_series_chart(
        std::string(c.figure) + " UNC, fi = " +
            util::format_double(c.fi, 0) + " SYN/s (flood at period 15)",
        {{"yn", path}}, "observation period n", params.threshold);
    const std::ptrdiff_t cross =
        stats::first_crossing(path, params.threshold);
    std::printf(
        "  threshold crossed at period %td (flood onset period 15) -> "
        "delay %td periods; paper: %s\n",
        cross, cross >= 0 ? cross - 15 : -1, c.paper);
  }
  return 0;
}
