// First-mile vs last-mile deployment (paper Fig. 6 shows both sniffers).
//
// The same distributed flood, observed at two places:
//  * first mile — each source stub's router pairs outgoing SYNs with
//    incoming SYN/ACKs; it sees its slave's share f_i immediately and can
//    name the station by MAC;
//  * last mile — the victim stub's router pairs incoming SYNs with
//    outgoing SYN/ACKs; the difference only opens once the victim's
//    backlog saturates and it stops answering, and there is no source
//    evidence at all.
//
// This bench quantifies that asymmetry in the DES: detection delay at
// both vantage points as the victim's backlog grows.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/attack/flood.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/sim/network.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

struct VantageResult {
  bool detected = false;
  std::int64_t delay_periods = 0;
  bool localized = false;
};

/// First mile: the slave's own stub, background web traffic + the flood.
VantageResult run_first_mile(double fi, std::uint64_t seed) {
  sim::StubNetworkParams params;
  params.num_hosts = 25;
  params.seed = seed;
  sim::StubNetworkSim network(params);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults());
  util::Rng rng(seed);
  std::vector<SimTime> starts;
  double t = 0.0;
  while (t < 10 * 60.0) {
    t += rng.exponential_mean(0.2);  // 5 conn/s
    starts.push_back(SimTime::from_seconds(t));
  }
  network.schedule_outbound_background(starts);

  attack::FloodSpec flood;
  flood.rate = fi;
  flood.start = SimTime::minutes(3);
  flood.duration = SimTime::minutes(6);
  util::Rng frng(seed ^ 0xf1);
  network.launch_flood(7, attack::generate_flood_times(flood, frng),
                       net::Ipv4Address(198, 51, 100, 10), 80,
                       *net::Ipv4Prefix::parse("240.0.0.0/8"));
  network.run_until(SimTime::minutes(10));

  VantageResult out;
  out.detected = agent.ever_alarmed();
  if (out.detected) {
    out.delay_periods =
        agent.first_alarm_period() -
        flood.start / core::SynDogParams{}.observation_period;
    const auto suspects = agent.locator().suspects();
    out.localized = !suspects.empty() &&
                    suspects.front().mac == net::MacAddress::for_host(7);
  }
  return out;
}

/// Last mile: the victim's stub; the flood arrives from outside.
VantageResult run_last_mile(double fi, std::size_t backlog,
                            std::uint64_t seed) {
  sim::StubNetworkParams params;
  params.num_hosts = 8;
  params.seed = seed;
  params.host_params.backlog = backlog;
  sim::StubNetworkSim network(params);
  network.make_servers(80);
  core::SynDogAgent agent(network.router(), network.scheduler(),
                          core::SynDogParams::paper_defaults(), {},
                          core::AgentMode::kLastMile);

  util::Rng rng(seed);
  std::vector<SimTime> inbound;
  double t = 0.0;
  while (t < 10 * 60.0) {
    t += rng.exponential_mean(0.2);  // 5 legit inbound conn/s
    inbound.push_back(SimTime::from_seconds(t));
  }
  network.schedule_inbound_background(inbound);

  attack::FloodSpec flood;
  flood.rate = fi;
  flood.start = SimTime::minutes(3);
  flood.duration = SimTime::minutes(6);
  util::Rng frng(seed ^ 0xf2);
  for (const SimTime at : attack::generate_flood_times(flood, frng)) {
    net::TcpPacketSpec spec;
    spec.src_mac = net::MacAddress::for_host(0xfffffe);
    spec.src_ip = net::Ipv4Address{0xf0000000u + frng.next_u32() % (1u << 20)};
    spec.dst_ip = params.stub_prefix.host(1);
    spec.src_port =
        static_cast<std::uint16_t>(frng.uniform_int(1024, 65535));
    spec.dst_port = 80;
    spec.seq = frng.next_u32();
    network.replay_at_router(at, net::make_syn(spec));
  }
  network.run_until(SimTime::minutes(10));

  VantageResult out;
  out.detected = agent.ever_alarmed();
  if (out.detected) {
    out.delay_periods =
        agent.first_alarm_period() -
        flood.start / core::SynDogParams{}.observation_period;
  }
  out.localized = !agent.locator().suspects().empty();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "firstmile_vs_lastmile",
      "First-mile vs last-mile SYN-dog (paper Fig. 6)",
      "first mile sees the flood leave immediately and names the MAC; "
      "last mile only alarms once the victim stops answering");

  util::TextTable table({"vantage", "fi (SYN/s)", "victim backlog",
                         "detected", "delay [t0]", "MAC evidence"});
  for (const double fi : {40.0, 80.0}) {
    const VantageResult first = run_first_mile(fi, 11);
    table.add_row({"first-mile (source stub)", util::format_double(fi, 0),
                   "-", first.detected ? "yes" : "no",
                   first.detected
                       ? util::format_double(
                             static_cast<double>(first.delay_periods), 0)
                       : "-",
                   first.localized ? "slave MAC named" : "none"});
    for (const std::size_t backlog : {std::size_t{256},
                                      std::size_t{4096}}) {
      const VantageResult last = run_last_mile(fi, backlog, 11);
      table.add_row(
          {"last-mile (victim stub)", util::format_double(fi, 0),
           std::to_string(backlog), last.detected ? "yes" : "no",
           last.detected
               ? util::format_double(
                     static_cast<double>(last.delay_periods), 0)
               : "-",
           last.localized ? "(unexpected)" : "none possible"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: the first mile detects within a couple of periods at\n"
      "either rate and always names the slave's MAC. The last mile\n"
      "detects only after the backlog saturates -- later for the larger\n"
      "backlog, and potentially never for a well-provisioned victim --\n"
      "and can never produce source evidence. That asymmetry is the\n"
      "paper's argument for deploying at leaf routers near the sources.\n");
  return 0;
}
