// Ablation for §4.2's claim: "the flooding traffic pattern or its
// transient behavior (bursty or not) does not affect the detection
// sensitivity. The detection sensitivity depends only on the total volume
// of flooding traffic."
//
// Same mean rate, three emission shapes (constant Poisson, ON/OFF bursts,
// linear ramp): detection probability should match; delay may differ
// slightly for the ramp because its volume arrives late.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "ablation_flood_shape",
      "Ablation -- flood emission shape (paper §4.2: volume is all that "
      "matters)",
      "constant vs bursty vs ramp at equal mean rate");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();

  util::TextTable table({"shape", "fi (SYN/s)", "detect prob",
                         "mean delay [t0]", "false alarms"});
  for (const double fi : {45.0, 60.0, 120.0}) {
    for (const attack::FloodShape shape :
         {attack::FloodShape::kConstant, attack::FloodShape::kOnOff,
          attack::FloodShape::kRamp}) {
      bench::EnsembleConfig cfg;
      cfg.trials = 15;
      cfg.seed = 1000;
      cfg.shape = shape;
      const bench::DetectionRow r =
          bench::detection_ensemble(spec, fi, params, cfg);
      table.add_row({std::string(attack::to_string(shape)),
                     util::format_double(fi, 0),
                     util::format_double(r.detection_probability, 2),
                     util::format_double(r.mean_delay_periods, 2),
                     std::to_string(r.false_alarm_periods)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: detection probability identical across shapes at each\n"
      "rate; the ramp's delay is larger (its cumulative volume arrives\n"
      "later), which is exactly the volume-not-pattern dependence the\n"
      "paper describes.\n");
  return 0;
}
