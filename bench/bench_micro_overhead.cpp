// Microbenchmarks for the paper's "low computation overhead" claim (§1):
// per-packet classification cost, per-period CUSUM cost, and the
// multi-field classifier engines, measured with google-benchmark.
//
// The headline numbers: one flag classification is a few nanoseconds and
// one CUSUM update is O(10) ns — i.e. SYN-dog adds no meaningful load to
// a leaf router, and its state is a handful of scalars.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/sidecar.hpp"
#include "syndog/classify/engines.hpp"
#include "syndog/classify/segment.hpp"
#include "syndog/core/mitigate.hpp"
#include "syndog/core/sniffer.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/util/rng.hpp"

using namespace syndog;

namespace {

net::Packet sample_syn(util::Rng& rng) {
  net::TcpPacketSpec spec;
  spec.src_mac = net::MacAddress::for_host(7);
  spec.dst_mac = net::MacAddress::for_host(0xffffff);
  spec.src_ip = net::Ipv4Address{rng.next_u32()};
  spec.dst_ip = net::Ipv4Address{rng.next_u32()};
  spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  spec.dst_port = 80;
  spec.seq = rng.next_u32();
  return net::make_syn(spec);
}

void BM_ClassifyFrameFast(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<net::ByteBuffer> frames;
  for (int i = 0; i < 64; ++i) {
    frames.push_back(net::encode_frame(sample_syn(rng)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classify::classify_frame_fast(frames[i++ % frames.size()]));
  }
}
BENCHMARK(BM_ClassifyFrameFast);

void BM_SnifferOnPacket(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<net::Packet> packets;
  for (int i = 0; i < 64; ++i) packets.push_back(sample_syn(rng));
  core::Sniffer sniffer(core::SnifferRole::kOutbound);
  std::size_t i = 0;
  for (auto _ : state) {
    sniffer.on_packet(packets[i++ % packets.size()]);
  }
  benchmark::DoNotOptimize(sniffer.lifetime_count());
}
BENCHMARK(BM_SnifferOnPacket);

void BM_CusumUpdate(benchmark::State& state) {
  detect::NonParametricCusum cusum(
      detect::NonParametricCusumParams{0.35, 1.05});
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1024; ++i) xs.push_back(rng.uniform(-0.1, 0.2));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cusum.update(xs[i++ % xs.size()]));
  }
}
BENCHMARK(BM_CusumUpdate);

void BM_SynDogObservePeriod(benchmark::State& state) {
  core::SynDog dog(core::SynDogParams::paper_defaults());
  std::int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dog.observe_period(2200 + (n & 0xff), 2100 + (n & 0x7f)));
    ++n;
  }
}
BENCHMARK(BM_SynDogObservePeriod);

/// Contrast: the per-SYN cost of the stateful victim-side alternatives.
void BM_SynCookieMakeVerify(benchmark::State& state) {
  core::SynCookieCodec codec(0xfeedface);
  util::Rng rng(4);
  std::uint64_t counter = 17;
  for (auto _ : state) {
    core::ConnKey key{net::Ipv4Address{rng.next_u32()},
                      static_cast<std::uint16_t>(rng.uniform_int(1, 65535)),
                      80};
    const std::uint32_t isn = rng.next_u32();
    const std::uint32_t cookie = codec.make(key, isn, counter);
    benchmark::DoNotOptimize(codec.verify(key, isn, cookie, counter));
  }
}
BENCHMARK(BM_SynCookieMakeVerify);

void BM_SynCacheAdmit(benchmark::State& state) {
  core::SynCache cache(1024);
  util::Rng rng(5);
  for (auto _ : state) {
    core::ConnKey key{net::Ipv4Address{rng.next_u32()},
                      static_cast<std::uint16_t>(rng.uniform_int(1, 65535)),
                      80};
    benchmark::DoNotOptimize(cache.admit(key, util::SimTime::zero()));
  }
}
BENCHMARK(BM_SynCacheAdmit);

/// Multi-field classifier engines over a realistic leaf-router rule set.
void add_rules(classify::Classifier& cls, int rules, util::Rng& rng) {
  cls.add_rule(classify::make_syn_count_rule(0));
  cls.add_rule(classify::make_syn_ack_count_rule(1));
  for (int i = 0; i < rules; ++i) {
    classify::Rule rule;
    rule.src = net::Ipv4Prefix{net::Ipv4Address{rng.next_u32()},
                               static_cast<int>(rng.uniform_int(8, 28))};
    rule.dst = net::Ipv4Prefix{net::Ipv4Address{rng.next_u32()},
                               static_cast<int>(rng.uniform_int(8, 28))};
    rule.priority = static_cast<std::uint32_t>(10 + i);
    rule.name = "acl-" + std::to_string(i);
    cls.add_rule(rule);
  }
  cls.build();
}

template <typename Engine>
void BM_ClassifierMatch(benchmark::State& state) {
  util::Rng rng(6);
  Engine engine;
  add_rules(engine, static_cast<int>(state.range(0)), rng);
  std::vector<classify::FlowKey> keys;
  for (int i = 0; i < 256; ++i) {
    keys.push_back(classify::FlowKey::from_packet(sample_syn(rng)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.match(keys[i++ % keys.size()]));
  }
  state.SetLabel(std::string(engine.name()));
}
BENCHMARK_TEMPLATE(BM_ClassifierMatch, classify::LinearClassifier)
    ->Arg(64)->Arg(512);
BENCHMARK_TEMPLATE(BM_ClassifierMatch, classify::HierarchicalTrieClassifier)
    ->Arg(64)->Arg(512);
BENCHMARK_TEMPLATE(BM_ClassifierMatch, classify::TupleSpaceClassifier)
    ->Arg(64)->Arg(512);

/// Measures the per-frame classification hot path through the
/// obs::WallClock seam into a sidecar-visible latency histogram: each
/// observation is one 64-frame batch, so the per-frame cost is
/// sum / (count * 64) with the two clock reads amortized away.
void measure_classify_histogram(bench::Sidecar& side) {
  constexpr int kBatch = 64;
  constexpr int kBatches = 20000;
  obs::WallClock clock;
  obs::Histogram& hist = side.registry().histogram(
      "classify.frame_batch64_ns", obs::latency_buckets_ns());
  util::Rng rng(1);
  std::vector<net::ByteBuffer> frames;
  for (int i = 0; i < kBatch; ++i) {
    frames.push_back(net::encode_frame(sample_syn(rng)));
  }
  for (int b = 0; b < kBatches; ++b) {
    obs::ScopedTimer timer(clock, hist);
    for (const net::ByteBuffer& frame : frames) {
      benchmark::DoNotOptimize(classify::classify_frame_fast(frame));
    }
  }
  side.scalar("classify_frame_mean_ns",
              hist.sum() / (static_cast<double>(hist.count()) * kBatch));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sidecar& side = bench::open_sidecar("micro_overhead");
  side.text("title",
            "Microbenchmarks -- per-packet / per-period overhead (Sec. 1)");
  measure_classify_histogram(side);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
