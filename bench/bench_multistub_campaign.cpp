// The full Fig. 6 experiment as one discrete-event simulation: several
// stub networks share one Internet cloud and one victim; a campaign
// places one slave per stub. Every packet of background and attack
// traffic crosses simulated routers and links; each stub's SYN-dog and a
// last-mile agent at the victim's stub watch their own interfaces.
//
// Claims exercised end to end:
//  * every participating stub detects its f_i share and names its local
//    slave by MAC (incremental deployability: each agent works alone);
//  * the victim's backlog collapses under the aggregate;
//  * replies to spoofed sources die in the core (no RST protection).
#include <cstdio>
#include <memory>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/attack/campaign.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/core/aggregator.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/sim/multistub.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

int main() {
  bench::print_header(
      "multistub_campaign",
      "Distributed campaign in one DES (paper Fig. 6, end to end)",
      "4 stubs x 1 slave, shared victim; per-stub first-mile detection + "
      "victim collapse");

  sim::MultiStubParams params;
  params.stub_count = 4;
  params.hosts_per_stub = 15;
  params.uplink.delay = SimTime::milliseconds(5);
  params.downlink.delay = SimTime::milliseconds(5);
  sim::MultiStubSim net(params);

  sim::TcpHostParams victim_params;
  victim_params.backlog = 1024;
  sim::TcpHost& victim = net.add_internet_host(
      "victim", net::Ipv4Address(198, 51, 100, 10), victim_params);
  victim.listen(80);

  core::AlarmAggregator aggregator(
      core::SynDogParams{}.observation_period);
  std::vector<std::unique_ptr<core::SynDogAgent>> agents;
  for (int s = 0; s < params.stub_count; ++s) {
    const std::string name = "stub-" + std::to_string(s);
    agents.push_back(std::make_unique<core::SynDogAgent>(
        net.router(s), net.scheduler(),
        core::SynDogParams::paper_defaults(),
        [&aggregator, name](const core::AlarmEvent& ev) {
          aggregator.report(name, ev);
        }));
  }

  // Background: ~5 conn/s of web traffic per stub for 10 minutes.
  util::Rng rng(42);
  for (int s = 0; s < params.stub_count; ++s) {
    std::vector<SimTime> starts;
    double t = 0.0;
    while (t < 10 * 60.0) {
      t += rng.exponential_mean(0.2);
      starts.push_back(SimTime::from_seconds(t));
    }
    net.schedule_outbound_background(s, starts);
  }

  // The campaign: 240 SYN/s aggregate = 60 SYN/s per stub, 6 minutes.
  attack::CampaignSpec campaign;
  campaign.aggregate_rate = 240.0;
  campaign.stub_networks = params.stub_count;
  campaign.start = SimTime::minutes(3);
  campaign.duration = SimTime::minutes(6);
  const attack::Campaign c(campaign, 7);
  std::vector<std::uint32_t> slaves;
  for (int s = 0; s < params.stub_count; ++s) {
    const std::uint32_t slave =
        c.slaves_in_stub(s)[0].host_index % params.hosts_per_stub + 1;
    slaves.push_back(slave);
    net.launch_flood(s, slave, c.flood_times_in_stub(s), victim.ip(), 80,
                     *net::Ipv4Prefix::parse("240.0.0.0/8"));
  }

  // Wall-clock the main run for the perf trajectory (scalars only; the
  // simulation itself stays deterministic from seeds).
  const obs::WallClock clock;
  const std::uint64_t executed_before = net.scheduler().executed();
  const std::int64_t wall_start = clock.now_ns();
  net.run_until(SimTime::minutes(10));
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;
  const double events =
      static_cast<double>(net.scheduler().executed() - executed_before);
  bench::sidecar()->scalar("events_per_sec", events / wall_s);
  bench::sidecar()->scalar("sim_seconds_per_wall_sec", 600.0 / wall_s);
  const sim::CloudStats& cs = net.cloud().stats();
  // Wide-area packet disposals per wall second (everything the cloud
  // delivered, answered, absorbed, or sank).
  bench::sidecar()->scalar(
      "packets_per_sec",
      static_cast<double>(cs.syns_seen + cs.syn_acks_generated +
                          cs.delivered_to_hosts + cs.dropped_unreachable +
                          cs.absorbed_elsewhere) /
          wall_s);

  const std::int64_t onset =
      campaign.start / core::SynDogParams{}.observation_period;
  util::TextTable table({"stub", "alarmed", "delay [t0]",
                         "top suspect MAC", "is the slave?"});
  for (int s = 0; s < params.stub_count; ++s) {
    const auto& agent = *agents[static_cast<std::size_t>(s)];
    const auto suspects = agent.locator().suspects();
    const net::MacAddress slave_mac = net::MacAddress::for_host(
        static_cast<std::uint32_t>(s) * 0x10000 + slaves[s]);
    table.add_row(
        {std::to_string(s), agent.ever_alarmed() ? "yes" : "NO",
         agent.ever_alarmed()
             ? util::format_double(
                   static_cast<double>(agent.first_alarm_period() - onset),
                   0)
             : "-",
         suspects.empty() ? "-" : suspects.front().mac.to_string(),
         !suspects.empty() && suspects.front().mac == slave_mac ? "yes"
                                                                : "NO"});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nvictim: backlog %zu/%zu half-open, %s SYNs dropped (backlog "
      "full), %s handshakes served\n",
      victim.half_open_count(), victim_params.backlog,
      util::format_count(static_cast<std::int64_t>(
          victim.stats().backlog_drops)).c_str(),
      util::format_count(static_cast<std::int64_t>(
          victim.stats().established_as_server)).c_str());
  std::printf(
      "core: %s SYN/ACK replies to spoofed sources died unreachable; "
      "victim sent %s RSTs (none reached an attacker)\n",
      util::format_count(static_cast<std::int64_t>(
          net.cloud().stats().dropped_unreachable)).c_str(),
      util::format_count(static_cast<std::int64_t>(
          victim.stats().rsts_sent)).c_str());
  std::printf(
      "operator aggregation: %zu stubs alarming, estimated campaign\n"
      "aggregate %.0f SYN/s (true V = %.0f)\n",
      aggregator.alarming_stubs(), aggregator.estimated_aggregate_rate(),
      campaign.aggregate_rate);
  std::printf(
      "\nexpected: all four stubs alarm within ~1-2 periods of onset and\n"
      "name their own slave's MAC -- each agent alone, no coordination,\n"
      "no traceback -- while the victim's backlog saturates despite\n"
      "answering every request it can.\n");
  return 0;
}
