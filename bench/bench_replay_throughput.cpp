// Capture-ingest pipeline throughput.
//
// The replay path is the deployable face of the reproduction: a leaf
// router's capture must stream through ring -> decode -> classify ->
// CUSUM faster than the wire fills it. This bench synthesizes a
// wire-realistic capture in memory (seeded, so the byte stream is
// reproducible), then streams it through ingest::ReplayEngine with a
// full ingest::AgentDemux first-mile deployment attached — every frame
// is pulled incrementally, decoded into a recycled ring slot, batched,
// routed through a sim::LeafRouter's taps, and counted into the
// SYN-dog CUSUM — and reports packets/s and bytes/s over that whole
// path.
//
// The same capture then goes through ingest::ShardedReplay at 1, 2, and
// 4 consumer threads (RSS-sharded rings + SIMD flag sweep); each run's
// per-period table must be field-identical to the single-threaded
// reference or the bench exits non-zero — throughput numbers from a
// datapath that diverges from the oracle are worthless.
//
// Wall time is read through obs::WallClock and feeds only the
// throughput scalars and the pkt/s-vs-threads series. With
// --deterministic those are omitted so the sidecar is byte-identical
// across same-seed runs (the determinism ctest runs exactly that);
// everything else — per-period counts, alarm verdicts, table_match,
// per-shard delivered counters, the metrics block — is wall-free either
// way.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/ingest/agent_demux.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/ingest/sharded.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;
using util::SimTime;

namespace {

constexpr std::uint64_t kFrames = 1'000'000;
constexpr std::int64_t kCaptureSpanSec = 600;  // 30 observation periods

/// Writes a mixed SYN / SYN-ACK / ACK capture: outbound connection
/// requests from stub hosts, inbound handshake replies, and data ACKs,
/// uniformly spread over the capture span.
std::string synthesize_capture(util::Rng& rng) {
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);

  const net::MacAddress router_mac = net::MacAddress::for_host(0);
  const net::Ipv4Prefix stub = *net::Ipv4Prefix::parse("10.1.0.0/16");
  const net::Ipv4Prefix remote = *net::Ipv4Prefix::parse("192.0.2.0/24");
  const std::int64_t span_ns = kCaptureSpanSec * 1'000'000'000;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    net::TcpPacketSpec spec;
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 200));
    const net::Ipv4Address stub_ip = stub.host(host);
    const net::Ipv4Address remote_ip =
        remote.host(static_cast<std::uint32_t>(rng.uniform_int(1, 200)));
    const double kind = rng.uniform();
    if (kind < 0.42) {  // outbound connection request
      spec.src_ip = stub_ip;
      spec.dst_ip = remote_ip;
      spec.src_port = static_cast<std::uint16_t>(1024 + host);
      spec.dst_port = 80;
      spec.flags = net::TcpFlags::syn_only();
    } else if (kind < 0.82) {  // inbound handshake reply
      spec.src_ip = remote_ip;
      spec.dst_ip = stub_ip;
      spec.src_port = 80;
      spec.dst_port = static_cast<std::uint16_t>(1024 + host);
      spec.flags = net::TcpFlags::syn_ack();
    } else {  // outbound data ACK
      spec.src_ip = stub_ip;
      spec.dst_ip = remote_ip;
      spec.src_port = static_cast<std::uint16_t>(1024 + host);
      spec.dst_port = 80;
      spec.flags = net::TcpFlags::ack_only();
      spec.payload_bytes = 512;
    }
    spec.src_mac = net::MacAddress::for_host(host);
    spec.dst_mac = router_mac;
    const auto at = SimTime::nanoseconds(
        static_cast<std::int64_t>(i * (span_ns / kFrames)));
    writer.write(at, net::encode_frame(net::make_tcp_packet(spec)));
  }
  writer.flush();
  return std::move(out).str();
}

/// Exact equality on every PeriodReport field — the sharded datapath's
/// contract is bit-identical trajectories, not "close enough" doubles.
bool same_history(const std::vector<core::PeriodReport>& a,
                  const std::vector<core::PeriodReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::PeriodReport& x = a[i];
    const core::PeriodReport& y = b[i];
    if (x.period_index != y.period_index || x.syn_count != y.syn_count ||
        x.syn_ack_count != y.syn_ack_count ||
        x.k_estimate != y.k_estimate || x.delta != y.delta || x.x != y.x ||
        x.y != y.y || x.alarm != y.alarm || x.x_clamped != y.x_clamped) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic =
      argc > 1 && std::strcmp(argv[1], "--deterministic") == 0;
  bench::print_header(
      "replay_throughput",
      "Streaming ingest throughput: ring -> decode -> classify -> CUSUM",
      "extension: capture replay of the paper's first-mile deployment");

  util::Rng rng(4242);
  const std::string capture = synthesize_capture(rng);
  std::printf("capture     : %llu frames, %.1f MB, %lld s of capture time\n",
              static_cast<unsigned long long>(kFrames),
              static_cast<double>(capture.size()) / 1e6,
              static_cast<long long>(kCaptureSpanSec));

  std::istringstream in(capture, std::ios::binary);
  ingest::ReplayEngine engine(in, {});
  ingest::AgentDemux demux(
      engine.scheduler(),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
  engine.add_sink(demux);
  engine.attach_observer(bench::sidecar()->registry());
  demux.attach_observer(nullptr, bench::sidecar()->registry());

  const obs::WallClock clock;
  const std::int64_t wall_start = clock.now_ns();
  const ingest::PipelineStats& stats = engine.run();
  demux.close_final_period();
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;

  const double packets_per_sec = static_cast<double>(stats.frames) / wall_s;
  const double bytes_per_sec = static_cast<double>(stats.bytes) / wall_s;
  std::printf("throughput  : %10.3e packets/s  %10.3e bytes/s  "
              "(%.2f s wall)\n",
              packets_per_sec, bytes_per_sec, wall_s);

  const core::SynDogAgent& agent = demux.agent(0);
  std::int64_t syns = 0;
  std::int64_t syn_acks = 0;
  for (const core::PeriodReport& r : agent.history()) {
    syns += r.syn_count;
    syn_acks += r.syn_ack_count;
  }
  std::printf("detector    : %zu periods, %lld SYNs, %lld SYN/ACKs, %s\n",
              agent.history().size(), static_cast<long long>(syns),
              static_cast<long long>(syn_acks),
              demux.alarms(0).empty() ? "no alarm (balanced traffic)"
                                      : "ALARM");

  bench::sidecar()->scalar("frames", static_cast<double>(stats.frames));
  bench::sidecar()->scalar("capture_bytes",
                           static_cast<double>(stats.bytes));
  bench::sidecar()->scalar("periods_observed",
                           static_cast<double>(agent.history().size()));
  bench::sidecar()->scalar("total_syns", static_cast<double>(syns));
  bench::sidecar()->scalar("total_syn_acks", static_cast<double>(syn_acks));
  bench::sidecar()->scalar("alarms",
                           static_cast<double>(demux.alarms(0).size()));
  if (!deterministic) {
    bench::sidecar()->scalar("packets_per_sec", packets_per_sec);
    bench::sidecar()->scalar("bytes_per_sec", bytes_per_sec);
  }

  // Sharded parallel ingest over the same capture bytes.  The 4-thread
  // run attaches the sidecar registry, so the exported metrics block
  // carries ingest.shard.<i>.{delivered,dropped} per ring.
  const std::vector<core::PeriodReport> reference = agent.history();
  const std::size_t kThreadCounts[] = {1, 2, 4};
  std::vector<double> pps_vs_threads;
  double aggregate_pps = 0.0;
  bool tables_match = true;
  // One 0.04 s pass is too noisy for a CI floor, so each thread count
  // reports its best of a few repetitions; every repetition still has to
  // reproduce the reference table.
  constexpr int kReps = 5;
  for (const std::size_t threads : kThreadCounts) {
    double best_pps = 0.0;
    double best_wall_s = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      ingest::ShardedConfig cfg;
      cfg.threads = threads;
      // 4096-slot rings keep each shard's working set (128 KiB of
      // digests) cache-resident; the 1<<15 default trades that for
      // headroom against bursty consumers, which a replay bench with a
      // saturating producer never needs.
      cfg.ring_capacity = std::size_t{1} << 12;
      cfg.params = core::SynDogParams::paper_defaults();
      // Zero-copy span source: frames straight out of the capture bytes,
      // the way an mmap'ed capture would be ingested at line rate.
      ingest::ShardedReplay sharded(
          net::ByteSpan{reinterpret_cast<const std::uint8_t*>(capture.data()),
                        capture.size()},
          {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}}, cfg);
      if (threads == 4 && rep == kReps - 1) {
        sharded.attach_observer(bench::sidecar()->registry());
      }
      const std::int64_t shard_start = clock.now_ns();
      sharded.run();
      const double shard_wall_s =
          static_cast<double>(clock.now_ns() - shard_start) / 1e9;
      const double pps =
          static_cast<double>(sharded.stats().frames) / shard_wall_s;
      if (pps > best_pps) {
        best_pps = pps;
        best_wall_s = shard_wall_s;
      }
      tables_match =
          tables_match && same_history(reference, sharded.history(0));
    }
    pps_vs_threads.push_back(best_pps);
    aggregate_pps = best_pps;  // last entry = 4-thread aggregate
    std::printf("sharded %zut : %10.3e packets/s  (%.2f s best of %d)  "
                "per-period table %s\n",
                threads, best_pps, best_wall_s, kReps,
                tables_match ? "matches reference" : "DIVERGES");
  }

  bench::sidecar()->scalar("threads", 4.0);
  bench::sidecar()->scalar("table_match", tables_match ? 1.0 : 0.0);
  if (!deterministic) {
    bench::sidecar()->scalar("aggregate_packets_per_sec", aggregate_pps);
    bench::sidecar()->series("packets_per_sec_vs_threads",
                             std::move(pps_vs_threads));
  }
  if (!tables_match) {
    std::fprintf(stderr,
                 "bench_replay_throughput: sharded per-period table "
                 "diverges from the single-threaded reference\n");
    return 1;
  }
  return 0;
}
