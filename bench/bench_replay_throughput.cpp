// Capture-ingest pipeline throughput.
//
// The replay path is the deployable face of the reproduction: a leaf
// router's capture must stream through ring -> decode -> classify ->
// CUSUM faster than the wire fills it. This bench synthesizes a
// wire-realistic capture in memory (seeded, so the byte stream is
// reproducible), then streams it through ingest::ReplayEngine with a
// full ingest::AgentDemux first-mile deployment attached — every frame
// is pulled incrementally, decoded into a recycled ring slot, batched,
// routed through a sim::LeafRouter's taps, and counted into the
// SYN-dog CUSUM — and reports packets/s and bytes/s over that whole
// path.
//
// Wall time is read through obs::WallClock and feeds only the two
// throughput scalars. With --deterministic those scalars are omitted so
// the sidecar is byte-identical across same-seed runs (the determinism
// ctest runs exactly that); everything else — per-period counts, alarm
// verdicts, the metrics block — is wall-free either way.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/ingest/agent_demux.hpp"
#include "syndog/ingest/replay.hpp"
#include "syndog/net/packet.hpp"
#include "syndog/obs/wallclock.hpp"
#include "syndog/pcap/pcap.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/time.hpp"

using namespace syndog;
using util::SimTime;

namespace {

constexpr std::uint64_t kFrames = 1'000'000;
constexpr std::int64_t kCaptureSpanSec = 600;  // 30 observation periods

/// Writes a mixed SYN / SYN-ACK / ACK capture: outbound connection
/// requests from stub hosts, inbound handshake replies, and data ACKs,
/// uniformly spread over the capture span.
std::string synthesize_capture(util::Rng& rng) {
  std::ostringstream out(std::ios::binary);
  pcap::Writer writer(out);

  const net::MacAddress router_mac = net::MacAddress::for_host(0);
  const net::Ipv4Prefix stub = *net::Ipv4Prefix::parse("10.1.0.0/16");
  const net::Ipv4Prefix remote = *net::Ipv4Prefix::parse("192.0.2.0/24");
  const std::int64_t span_ns = kCaptureSpanSec * 1'000'000'000;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    net::TcpPacketSpec spec;
    const auto host = static_cast<std::uint32_t>(rng.uniform_int(1, 200));
    const net::Ipv4Address stub_ip = stub.host(host);
    const net::Ipv4Address remote_ip =
        remote.host(static_cast<std::uint32_t>(rng.uniform_int(1, 200)));
    const double kind = rng.uniform();
    if (kind < 0.42) {  // outbound connection request
      spec.src_ip = stub_ip;
      spec.dst_ip = remote_ip;
      spec.src_port = static_cast<std::uint16_t>(1024 + host);
      spec.dst_port = 80;
      spec.flags = net::TcpFlags::syn_only();
    } else if (kind < 0.82) {  // inbound handshake reply
      spec.src_ip = remote_ip;
      spec.dst_ip = stub_ip;
      spec.src_port = 80;
      spec.dst_port = static_cast<std::uint16_t>(1024 + host);
      spec.flags = net::TcpFlags::syn_ack();
    } else {  // outbound data ACK
      spec.src_ip = stub_ip;
      spec.dst_ip = remote_ip;
      spec.src_port = static_cast<std::uint16_t>(1024 + host);
      spec.dst_port = 80;
      spec.flags = net::TcpFlags::ack_only();
      spec.payload_bytes = 512;
    }
    spec.src_mac = net::MacAddress::for_host(host);
    spec.dst_mac = router_mac;
    const auto at = SimTime::nanoseconds(
        static_cast<std::int64_t>(i * (span_ns / kFrames)));
    writer.write(at, net::encode_frame(net::make_tcp_packet(spec)));
  }
  writer.flush();
  return std::move(out).str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool deterministic =
      argc > 1 && std::strcmp(argv[1], "--deterministic") == 0;
  bench::print_header(
      "replay_throughput",
      "Streaming ingest throughput: ring -> decode -> classify -> CUSUM",
      "extension: capture replay of the paper's first-mile deployment");

  util::Rng rng(4242);
  const std::string capture = synthesize_capture(rng);
  std::printf("capture     : %llu frames, %.1f MB, %lld s of capture time\n",
              static_cast<unsigned long long>(kFrames),
              static_cast<double>(capture.size()) / 1e6,
              static_cast<long long>(kCaptureSpanSec));

  std::istringstream in(capture, std::ios::binary);
  ingest::ReplayEngine engine(in, {});
  ingest::AgentDemux demux(
      engine.scheduler(),
      {{*net::Ipv4Prefix::parse("10.1.0.0/16"), "stub"}},
      core::SynDogParams::paper_defaults());
  engine.add_sink(demux);
  engine.attach_observer(bench::sidecar()->registry());
  demux.attach_observer(nullptr, bench::sidecar()->registry());

  const obs::WallClock clock;
  const std::int64_t wall_start = clock.now_ns();
  const ingest::PipelineStats& stats = engine.run();
  demux.close_final_period();
  const double wall_s =
      static_cast<double>(clock.now_ns() - wall_start) / 1e9;

  const double packets_per_sec = static_cast<double>(stats.frames) / wall_s;
  const double bytes_per_sec = static_cast<double>(stats.bytes) / wall_s;
  std::printf("throughput  : %10.3e packets/s  %10.3e bytes/s  "
              "(%.2f s wall)\n",
              packets_per_sec, bytes_per_sec, wall_s);

  const core::SynDogAgent& agent = demux.agent(0);
  std::int64_t syns = 0;
  std::int64_t syn_acks = 0;
  for (const core::PeriodReport& r : agent.history()) {
    syns += r.syn_count;
    syn_acks += r.syn_ack_count;
  }
  std::printf("detector    : %zu periods, %lld SYNs, %lld SYN/ACKs, %s\n",
              agent.history().size(), static_cast<long long>(syns),
              static_cast<long long>(syn_acks),
              demux.alarms(0).empty() ? "no alarm (balanced traffic)"
                                      : "ALARM");

  bench::sidecar()->scalar("frames", static_cast<double>(stats.frames));
  bench::sidecar()->scalar("capture_bytes",
                           static_cast<double>(stats.bytes));
  bench::sidecar()->scalar("periods_observed",
                           static_cast<double>(agent.history().size()));
  bench::sidecar()->scalar("total_syns", static_cast<double>(syns));
  bench::sidecar()->scalar("total_syn_acks", static_cast<double>(syn_acks));
  bench::sidecar()->scalar("alarms",
                           static_cast<double>(demux.alarms(0).size()));
  if (!deterministic) {
    bench::sidecar()->scalar("packets_per_sec", packets_per_sec);
    bench::sidecar()->scalar("bytes_per_sec", bytes_per_sec);
  }
  return 0;
}
