// Reproduces the analytic claims around Eq. (8) and §4.2.3:
//
//  * f_min = (a - c) * K-bar / t0: ~37 SYN/s at UNC, ~1.75 at Auckland;
//  * to keep a 14,000 SYN/s aggregate (enough to down a firewalled server
//    [8]) below the radar, an attacker must spread over more than
//    V / f_min stubs: ~378 UNC-sized or ~8,000 Auckland-sized networks;
//  * Eq. (7)'s conservative delay bound vs the measured delay.
#include <cstdio>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/attack/campaign.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "sensitivity_bound",
      "Eq. (8) sensitivity bound and distributed-attack capacity",
      "f_min: 37 (UNC) / 1.75 (Auckland); hiding capacity A_s: 378 / "
      "~8,000 stubs at V = 14,000 SYN/s");

  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  util::TextTable table({"site", "measured K-bar", "f_min (paper)",
                         "max hiding stubs @V=14000 (paper)"});

  struct Ref {
    trace::SiteId site;
    double paper_fmin;
    const char* paper_stubs;
  };
  for (const Ref& ref : {Ref{trace::SiteId::kUnc, 37.0, "378"},
                         Ref{trace::SiteId::kAuckland, 1.75, "~8000"}}) {
    const trace::SiteSpec spec = trace::site_spec(ref.site);
    const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 42);
    const trace::PeriodSeries ps =
        trace::extract_periods(tr, trace::kObservationPeriod);
    stats::OnlineStats k_stats;
    for (std::int64_t v : ps.in_syn_ack) {
      k_stats.add(static_cast<double>(v));
    }
    // The paper evaluates Eq. (8) with the conservative c = 0.
    const double fmin = core::SynDog::min_detectable_rate(
        params.a, 0.0, k_stats.mean(), params.observation_period);
    const std::int64_t stubs =
        attack::max_hiding_stubs(attack::kFirewalledServerRate, fmin);
    table.add_row({spec.name, util::format_double(k_stats.mean(), 1),
                   util::format_double(fmin, 2) + "  (" +
                       util::format_double(ref.paper_fmin, 2) + ")",
                   util::format_count(stubs) + "  (" + ref.paper_stubs +
                       ")"});
    if (ref.site == trace::SiteId::kUnc) {
      // Cross-link with bench_campaign_scale: the realized per-stub share
      // f_i = V / A_s exactly at the hiding bound (>= f_min: every stub
      // still detects) and one stub past it (< f_min by construction of
      // floor(V / f_min): the campaign disappears below the radar). The
      // scale bench drives a sharded thousand-stub campaign at exactly
      // these ratios.
      const double v = attack::kFirewalledServerRate;
      const double fi_bound = v / static_cast<double>(stubs);
      const double fi_hiding = v / static_cast<double>(stubs + 1);
      bench::sidecar()->scalar("unc_f_min", fmin);
      bench::sidecar()->scalar("max_hiding_stubs_unc",
                               static_cast<double>(stubs));
      bench::sidecar()->scalar("per_stub_fi_at_bound", fi_bound);
      bench::sidecar()->scalar("per_stub_fi_hiding", fi_hiding);
      bench::sidecar()->scalar("bound_fi_over_fmin", fi_bound / fmin);
      bench::sidecar()->scalar("hiding_fi_over_fmin", fi_hiding / fmin);
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Eq. (7) bound vs. measurement at UNC.
  std::printf("\nEq. (7) conservative delay bound vs measured (UNC):\n");
  const trace::SiteSpec unc = trace::site_spec(trace::SiteId::kUnc);
  bench::EnsembleConfig cfg;
  cfg.trials = 15;
  cfg.seed = 1000;
  util::TextTable delays({"fi (SYN/s)", "Eq. (7) bound [t0]",
                          "measured mean [t0]"});
  core::SynDog dog(params);
  // Prime the K estimate from one clean trace.
  {
    const bench::FloodTrial clean = bench::make_flood_trial(unc, 0.0, cfg, 0);
    for (std::size_t i = 0; i < clean.out_syn.size(); ++i) {
      dog.observe_period(clean.out_syn[i], clean.in_syn_ack[i]);
    }
  }
  for (const double fi : {45.0, 60.0, 80.0, 120.0}) {
    const bench::DetectionRow r =
        bench::detection_ensemble(unc, fi, params, cfg);
    delays.add_row(
        {util::format_double(fi, 0),
         util::format_double(dog.expected_detection_periods(fi, 0.05), 2),
         util::format_double(r.mean_delay_periods, 2)});
  }
  std::printf("%s", delays.to_string().c_str());
  std::printf("\nexpected: measured delay tracks the analytic bound "
              "(within ~1 period).\n");
  return 0;
}
