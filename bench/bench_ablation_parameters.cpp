// Ablation over the design parameters (a, N, alpha) the paper fixes at
// a=0.35, N=1.05 (via h=2a and a 3-period design delay), alpha for the K
// estimate.
//
//  * sweeping a trades the detection floor against false-alarm margin;
//  * sweeping N trades delay against the (exponentially growing, Eq. 5)
//    false-alarm spacing;
//  * sweeping alpha shows the K estimator is forgiving (the paper leaves
//    it unspecified).
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/detect/arl.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

/// Worst normal-mode statistic over an ensemble of clean traces: the
/// margin to N determines how close a setting is to false-alarming.
double worst_clean_spike(const trace::SiteSpec& spec,
                         const core::SynDogParams& params, int seeds) {
  double worst = 0.0;
  for (int s = 0; s < seeds; ++s) {
    bench::EnsembleConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(s);
    const std::vector<double> path =
        bench::statistic_path(spec, 0.0, params, cfg);
    worst = std::max(worst, stats::series_max(path));
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_header(
      "ablation_parameters",
      "Ablation -- design parameters a, N, alpha (paper §3.2)",
      "a=0.35 offsets normal drift; N=1.05 gives a 3-period design delay "
      "at h=2a; false-alarm margin grows with both");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  bench::EnsembleConfig cfg;
  cfg.trials = 15;
  cfg.seed = 1000;

  std::printf("\n-- sweep a (N fixed at 1.05) --\n");
  util::TextTable ta({"a", "f_min (Eq.8, c=0)", "fi=45: prob",
                      "delay [t0]", "worst clean spike / N"});
  for (const double a : {0.15, 0.25, 0.35, 0.45, 0.6}) {
    core::SynDogParams p = core::SynDogParams::paper_defaults();
    p.a = a;
    p.h = 2 * a;
    const double fmin = core::SynDog::min_detectable_rate(
        a, 0.0, 2114.0, p.observation_period);
    const bench::DetectionRow r =
        bench::detection_ensemble(spec, 45.0, p, cfg);
    ta.add_row({util::format_double(a, 2), util::format_double(fmin, 1),
                util::format_double(r.detection_probability, 2),
                util::format_double(r.mean_delay_periods, 2),
                util::format_double(worst_clean_spike(spec, p, 8), 3) +
                    " / " + util::format_double(p.threshold, 2)});
  }
  std::printf("%s", ta.to_string().c_str());

  std::printf("\n-- sweep N (a fixed at 0.35) --\n");
  util::TextTable tn({"N", "fi=60: prob", "delay [t0]",
                      "worst clean spike / N"});
  for (const double n : {0.3, 0.6, 1.05, 2.0, 4.0}) {
    core::SynDogParams p = core::SynDogParams::paper_defaults();
    p.threshold = n;
    const bench::DetectionRow r =
        bench::detection_ensemble(spec, 60.0, p, cfg);
    tn.add_row({util::format_double(n, 2),
                util::format_double(r.detection_probability, 2),
                util::format_double(r.mean_delay_periods, 2),
                util::format_double(worst_clean_spike(spec, p, 8), 3) +
                    " / " + util::format_double(n, 2)});
  }
  std::printf("%s", tn.to_string().c_str());

  std::printf("\n-- sweep K-estimator memory alpha --\n");
  util::TextTable tk({"alpha", "fi=60: prob", "delay [t0]",
                      "false alarms"});
  for (const double alpha : {0.5, 0.8, 0.9, 0.98}) {
    core::SynDogParams p = core::SynDogParams::paper_defaults();
    p.ewma_alpha = alpha;
    const bench::DetectionRow r =
        bench::detection_ensemble(spec, 60.0, p, cfg);
    tk.add_row({util::format_double(alpha, 2),
                util::format_double(r.detection_probability, 2),
                util::format_double(r.mean_delay_periods, 2),
                std::to_string(r.false_alarm_periods)});
  }
  std::printf("%s", tk.to_string().c_str());

  // Numerical design table: pick N from a false-alarm budget without any
  // simulation (Brook-Evans ARL). At UNC's tiny normal-mode sigma
  // (~0.03-0.05) every N here is effectively false-alarm-free, so the
  // table uses a hypothetical noisy site (sigma = 0.2) where the
  // trade-off is visible.
  std::printf("\n-- threshold design via Brook-Evans ARL "
              "(noisy site: c=0.05, sigma=0.2) --\n");
  util::TextTable td({"N", "ARL0 (periods between FA)",
                      "equivalent wall-clock at t0=20s"});
  for (const double n : {0.3, 0.5, 0.7, 0.9, 1.05}) {
    detect::ArlSpec arl;
    arl.mean = 0.05;
    arl.stddev = 0.2;
    arl.threshold = n;
    const double arl0 = detect::cusum_average_run_length(arl);
    const double hours = arl0 * 20.0 / 3600.0;
    td.add_row({util::format_double(n, 2),
                arl0 > 1e15 ? ">1e15" : util::format_count(
                    static_cast<std::int64_t>(arl0)),
                hours > 24.0 * 365.0
                    ? util::format_double(hours / (24.0 * 365.0), 1) +
                          " years"
                    : util::format_double(hours, 1) + " hours"});
  }
  std::printf("%s", td.to_string().c_str());
  std::printf(
      "\nexpected: delay grows ~linearly with N and shrinks as a drops\n"
      "(at the cost of clean-spike margin); alpha barely matters; the\n"
      "ARL table shows why N=1.05 is effectively false-alarm-free at a\n"
      "well-behaved site.\n");
  return 0;
}
