// Ablation for §3.2's motivation: there is no consensus on whether TCP
// connection arrivals are Poisson or self-similar, so SYN-dog is
// deliberately non-parametric. We regenerate the UNC workload under four
// arrival models with the same mean rate and verify the detector's
// behaviour — no false alarms, same detection floor — is unchanged.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "ablation_arrival_model",
      "Ablation -- connection arrival model (paper §3.2: non-parametric "
      "by design)",
      "Poisson vs MMPP vs Pareto-ON/OFF (self-similar) vs Weibull renewal");

  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  util::TextTable table({"arrival model", "false alarms (no attack)",
                         "fi=45: prob", "delay [t0]", "fi=80: prob",
                         "delay [t0]"});
  for (const trace::ArrivalKind kind :
       {trace::ArrivalKind::kPoisson, trace::ArrivalKind::kMmpp,
        trace::ArrivalKind::kParetoOnOff, trace::ArrivalKind::kWeibull}) {
    trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
    spec.arrival_kind = kind;

    bench::EnsembleConfig cfg;
    cfg.trials = 15;
    cfg.seed = 1000;
    const bench::DetectionRow clean =
        bench::detection_ensemble(spec, 0.0, params, cfg);
    const bench::DetectionRow r45 =
        bench::detection_ensemble(spec, 45.0, params, cfg);
    const bench::DetectionRow r80 =
        bench::detection_ensemble(spec, 80.0, params, cfg);
    table.add_row({std::string(trace::to_string(kind)),
                   std::to_string(clean.false_alarm_periods),
                   util::format_double(r45.detection_probability, 2),
                   util::format_double(r45.mean_delay_periods, 2),
                   util::format_double(r80.detection_probability, 2),
                   util::format_double(r80.mean_delay_periods, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: every row detects with probability 1.0 at comparable\n"
      "delay and zero false alarms -- the detector never sees the arrival\n"
      "law, only the SYN-SYN/ACK imbalance.\n");
  return 0;
}
