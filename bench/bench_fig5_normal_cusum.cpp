// Reproduces Figure 5: the CUSUM test statistic {yn} under normal
// operation at Harvard, UNC, and Auckland, with the paper's universal
// parameters (a = 0.35, N = 1.05, t0 = 20 s).
//
// Paper claims: yn is mostly zero; the isolated spikes stay far below the
// flooding threshold (max ~0.05 at Harvard, ~0.26 at Auckland), so no
// false alarm is ever reported.
#include <cstdio>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;

namespace {

struct PaperRef {
  trace::SiteId site;
  const char* figure;
  const char* slug;        ///< sidecar key prefix ("harvard", "unc", ...)
  double paper_max_spike;  ///< <0 when the paper gives no number
};

void run_site(const PaperRef& ref, int seeds) {
  const trace::SiteSpec spec = trace::site_spec(ref.site);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();

  // Representative single-trace trajectory (the figure itself).
  bench::EnsembleConfig cfg;
  cfg.seed = 42;
  const std::vector<double> path =
      bench::statistic_path(spec, /*fi=*/0.0, params, cfg);
  bench::print_series_chart(
      std::string(ref.figure) + " " + spec.name +
          ": CUSUM statistic yn under normal operation",
      {{"yn", path}}, "observation period n", params.threshold,
      /*y_max=*/1.15);

  // Ensemble summary: maximum spike and false alarms across many seeds.
  double worst = 0.0;
  int false_alarms = 0;
  for (int s = 0; s < seeds; ++s) {
    bench::EnsembleConfig seed_cfg;
    seed_cfg.seed = 100 + static_cast<std::uint64_t>(s);
    const std::vector<double> p =
        bench::statistic_path(spec, 0.0, params, seed_cfg);
    worst = std::max(worst, stats::series_max(p));
    for (double y : p) {
      if (y > params.threshold) ++false_alarms;
    }
  }
  std::printf(
      "  this trace: max spike %.3f | %d-seed ensemble: worst spike %.3f, "
      "false alarms %d (threshold N = %.2f)\n",
      stats::series_max(path), seeds, worst, false_alarms,
      params.threshold);
  if (ref.paper_max_spike >= 0.0) {
    std::printf("  paper reports max spike ~%.2f and no false alarms\n",
                ref.paper_max_spike);
  } else {
    std::printf("  paper reports mostly-zero yn and no false alarms\n");
  }

  // Sidecar: the figure's per-period CUSUM trajectory plus the ensemble
  // summary, keyed by site slug.
  bench::Sidecar& side = *bench::sidecar();
  const std::string slug = ref.slug;
  side.series(slug + "_yn", path);
  side.scalar(slug + "_max_spike", stats::series_max(path));
  side.scalar(slug + "_ensemble_worst_spike", worst);
  side.scalar(slug + "_ensemble_false_alarms", false_alarms);
  bench::record_site_calibration(spec, slug, cfg.seed);
}

}  // namespace

int main() {
  bench::print_header(
      "fig5_normal_cusum",
      "Figure 5 -- CUSUM statistic under normal operation",
      "Fig. 5(a) Harvard max spike ~0.05; Fig. 5(b) UNC; Fig. 5(c) "
      "Auckland max spike ~0.26; no false alarms anywhere");
  run_site({trace::SiteId::kHarvard, "Fig. 5(a)", "harvard", 0.05}, 15);
  run_site({trace::SiteId::kUnc, "Fig. 5(b)", "unc", -1.0}, 15);
  run_site({trace::SiteId::kAuckland, "Fig. 5(c)", "auckland", 0.26}, 15);
  return 0;
}
