// Reproduces Figure 8: the dynamic behaviour of yn during SYN floods at
// Auckland, for fi = 2, 5, 10 SYN/s. Paper: ~8 periods at 2 SYN/s, 2 at
// 5, and 1 at 10.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "fig8_auckland_dynamics",
      "Figure 8 -- SYN flooding detection dynamics at Auckland",
      "even a 2 SYN/s flood accumulates past N at this small site "
      "(paper: ~8 periods at fi=2, 2 at fi=5, 1 at fi=10)");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kAuckland);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  // Zoom in on a 60-minute slice around a fixed onset so the climb is
  // visible at the 3-hour trace's scale.
  constexpr std::int64_t kOnsetPeriod = 60;  // flood starts at minute 20

  const struct {
    double fi;
    const char* figure;
    const char* paper;
  } cases[] = {{2.0, "Fig. 8(a)", "~8 periods"},
               {5.0, "Fig. 8(b)", "2 periods"},
               {10.0, "Fig. 8(c)", "1 period"}};

  for (const auto& c : cases) {
    bench::EnsembleConfig cfg;
    cfg.seed = 2000;
    cfg.start_min_s = 20 * 60.0;
    cfg.start_max_s = 20 * 60.0;
    std::vector<double> path =
        bench::statistic_path(spec, c.fi, params, cfg);
    path.resize(std::min<std::size_t>(path.size(), 180));  // first hour
    bench::print_series_chart(
        std::string(c.figure) + " Auckland, fi = " +
            util::format_double(c.fi, 0) +
            " SYN/s (flood at period 60; first hour shown)",
        {{"yn", path}}, "observation period n", params.threshold);
    const std::ptrdiff_t cross =
        stats::first_crossing(path, params.threshold);
    std::printf(
        "  threshold crossed at period %td (onset period %lld) -> delay "
        "%td periods; paper: %s\n",
        cross, static_cast<long long>(kOnsetPeriod),
        cross >= 0 ? cross - kOnsetPeriod : -1, c.paper);
  }
  return 0;
}
