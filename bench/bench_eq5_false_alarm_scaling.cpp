// Reproduces the scaling law of Eq. (5): for the non-parametric CUSUM,
//
//   P_inf{ d_N(n) = 1 }  ~=  c1 * exp(-c2 * N),
//
// i.e. the mean time between false alarms grows exponentially with the
// flooding threshold N. The paper adds that the traffic's burstiness
// (mixing coefficients) affects only the constants c1, c2 — so we
// measure the law on an i.i.d. observation stream *and* on a strongly
// autocorrelated (AR(1)) stream and fit both exponents.
//
// The calibrated site traces never false-alarm at all at N = 1.05 (that
// is Figure 5), so this bench deliberately uses a noisier synthetic
// {Xn}: Gaussian with sigma large enough that small thresholds trip
// regularly, making the exponent measurable.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/experiment.hpp"
#include "syndog/detect/arl.hpp"
#include "syndog/detect/cusum.hpp"
#include "syndog/util/rng.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

/// Mean periods between false alarms of the paper's CUSUM at threshold n
/// over a stream produced by `next()`. Counts rising edges only.
template <typename Next>
double false_alarm_spacing(double n, std::int64_t samples, Next next) {
  detect::NonParametricCusum cusum({0.35, n, /*cap=*/4.0 * n});
  std::int64_t alarms = 0;
  bool was = false;
  for (std::int64_t i = 0; i < samples; ++i) {
    const bool alarm = cusum.update(next()).alarm;
    if (alarm && !was) ++alarms;
    was = alarm;
  }
  if (alarms == 0) return static_cast<double>(samples);  // lower bound
  return static_cast<double>(samples) / static_cast<double>(alarms);
}

/// Least-squares slope of log(spacing) against N: the measured c2.
double fit_exponent(const std::vector<double>& ns,
                    const std::vector<double>& spacings) {
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const auto count = static_cast<double>(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double y = std::log(spacings[i]);
    sx += ns[i];
    sy += y;
    sxx += ns[i] * ns[i];
    sxy += ns[i] * y;
  }
  return (count * sxy - sx * sy) / (count * sxx - sx * sx);
}

}  // namespace

int main() {
  bench::print_header(
      "eq5_false_alarm_scaling",
      "Eq. (5) -- false-alarm time grows exponentially with N",
      "time between false alarms ~ exp(c2*N); burstiness only changes "
      "the constants");

  constexpr std::int64_t kSamples = 2'000'000;
  const std::vector<double> thresholds = {0.2, 0.4, 0.6, 0.8, 1.05, 1.3};

  // Stream A: i.i.d. Gaussian Xn, mean 0.05, sigma 0.25.
  util::Rng iid_rng(1);
  // Stream B: AR(1) with the same marginal mean and comparable variance
  // but strong positive autocorrelation (phi = 0.7) — "burstier" in the
  // mixing-coefficient sense the paper cites.
  util::Rng ar_rng(2);
  double ar_state = 0.0;
  const double phi = 0.7;
  const double innovation_sigma = 0.25 * std::sqrt(1.0 - phi * phi);

  std::vector<double> iid_spacing;
  std::vector<double> ar_spacing;
  util::TextTable table({"threshold N", "iid: periods between FA",
                         "Brook-Evans ARL0 (numeric)",
                         "AR(1) phi=0.7: periods between FA"});
  for (const double n : thresholds) {
    const double iid = false_alarm_spacing(n, kSamples, [&] {
      return iid_rng.normal(0.05, 0.25);
    });
    const double ar = false_alarm_spacing(n, kSamples, [&] {
      ar_state = phi * ar_state + ar_rng.normal(0.0, innovation_sigma);
      return 0.05 + ar_state;
    });
    // The numeric design tool should predict the iid column without any
    // simulation at all (Markov-chain ARL; see detect/arl.hpp).
    detect::ArlSpec spec;
    spec.mean = 0.05;
    spec.stddev = 0.25;
    spec.threshold = n;
    const double numeric = detect::cusum_average_run_length(spec);
    iid_spacing.push_back(iid);
    ar_spacing.push_back(ar);
    table.add_row({util::format_double(n, 2),
                   util::format_count(static_cast<std::int64_t>(iid)),
                   util::format_count(static_cast<std::int64_t>(numeric)),
                   util::format_count(static_cast<std::int64_t>(ar))});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf(
      "\nfitted exponents c2 (slope of log spacing vs N):\n"
      "  iid stream:   c2 = %.2f per unit N  (x%.0f per +0.2 N)\n"
      "  AR(1) stream: c2 = %.2f per unit N  (x%.0f per +0.2 N)\n",
      fit_exponent(thresholds, iid_spacing),
      std::exp(0.2 * fit_exponent(thresholds, iid_spacing)),
      fit_exponent(thresholds, ar_spacing),
      std::exp(0.2 * fit_exponent(thresholds, ar_spacing)));
  std::printf(
      "\nexpected: both columns grow by a roughly constant factor per\n"
      "threshold step (exponential law, positive c2); the correlated\n"
      "stream alarms more often at every N (smaller c2/c1) but obeys the\n"
      "same law -- burstiness moves the constants, not the shape, exactly\n"
      "as the paper asserts below Eq. (5).\n");
  return 0;
}
