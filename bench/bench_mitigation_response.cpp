// Closed-loop mitigation response: victim goodput before / during / after
// a first-mile flood under the staged policies of mitigate::
// MitigationController, plus a chaos-window false alarm proving the
// controller never throttles on degraded evidence.
//
// The topology is bench_victim_goodput's (shared harness, common/
// victim_load.hpp): 20 stub hosts open legit connections to a classic-
// stack victim (backlog 128, 75 s half-open lifetime, budget ~1.7
// spoofed SYN/s) at ~10 conn/s, while stub host 1 floods 200 spoofed
// SYN/s for 3 minutes. A first-mile SYN-dog on the leaf router alarms
// within one observation period; the controller then walks the flooding
// station through rate-limit (token bucket below the victim's budget)
// into quarantine, and releases it — through a probe period — once the
// CUSUM decays. The statistic cap (~2.0) bounds how much alarm mass the
// flood can bank, so release hysteresis is measured in periods, not
// flood length.
#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"
#include "common/victim_load.hpp"
#include "syndog/core/agent.hpp"
#include "syndog/fault/chaos.hpp"
#include "syndog/mitigate/controller.hpp"
#include "syndog/mitigate/recorder.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;
using util::SimTime;

namespace {

constexpr double kPreEndS = 120.0;     ///< attack onset
constexpr double kAttackEndS = 300.0;  ///< flood stops
constexpr double kEndS = 720.0;        ///< bench window end
constexpr double kFloodRate = 200.0;   ///< SYN/s, ~118x the victim budget

struct Scenario {
  const char* label;
  mitigate::MitigationPolicy policy;
  bool victim_cookies = false;
  bool flood = true;
  bool chaos_window = false;  ///< asymmetric route instead of a flood
};

struct ScenarioResult {
  double goodput_pre = 0.0;
  double goodput_attack = 0.0;
  double goodput_post = 0.0;
  mitigate::ControllerStats stats;
  std::uint64_t victim_backlog_drops = 0;
  std::uint64_t cookie_engagements = 0;
  std::optional<double> engaged_at_s;
  std::optional<double> recovered_at_s;
  std::vector<double> half_open_series;  ///< victim, per observation period
};

ScenarioResult run_scenario(const Scenario& sc) {
  bench::VictimLoadConfig cfg;
  cfg.seed = 42;
  cfg.victim_params.backlog = 128;
  cfg.victim_params.half_open_timeout = SimTime::seconds(75);
  cfg.victim_params.syn_cookies = sc.victim_cookies;
  cfg.legit_end_s = kEndS;
  cfg.flood_rate = sc.flood ? kFloodRate : 0.0;
  cfg.flood_start = SimTime::from_seconds(kPreEndS);
  cfg.flood_duration =
      SimTime::from_seconds(kAttackEndS) - SimTime::from_seconds(kPreEndS);
  // Background flows to other Internet servers keep the first-mile
  // SYN/ACK stream alive while the victim's backlog is wedged; without
  // them every stub connection targets the one victim and its collapse
  // reads as a dead return path (degraded health -> vetoed alarms). The
  // false-alarm chaos window still collapses the stream for real: the
  // asymmetric route diverts *all* inbound SYN/ACKs around the tap.
  cfg.background_rate = 10.0;
  bench::VictimLoadHarness harness(cfg);

  core::SynDogParams params;
  params.statistic_cap = 2.0;  // bound banked alarm mass -> bounded release
  core::SynDogAgent agent(harness.net().router(), harness.net().scheduler(),
                          params);
  mitigate::MitigationController controller(agent, harness.net().router(),
                                            sc.policy);
  mitigate::MitigationRecorder recorder(controller);

  fault::FaultSchedule schedule;
  if (sc.chaos_window) {
    // Dead return path for the whole would-be attack window: every
    // SYN/ACK bypasses the inbound tap, so the agent sees its counters
    // collapse and (after outage_patience) raises *degraded* alarms.
    schedule.asymmetric_route(SimTime::from_seconds(kPreEndS),
                              SimTime::from_seconds(kAttackEndS), 1.0);
  }
  std::optional<fault::ChaosController> chaos;
  if (!schedule.empty()) chaos.emplace(harness.net(), schedule, cfg.seed);

  ScenarioResult r;
  for (double t = 10.0; t < kEndS; t += 20.0) {
    harness.net().scheduler().schedule_at(
        SimTime::from_seconds(t), [&harness, &r] {
          r.half_open_series.push_back(
              static_cast<double>(harness.victim().half_open_count()));
        });
  }

  // Victim-side handshake count: background flows land on other servers,
  // and the spoofed flood never ACKs, so this isolates legit goodput.
  const auto established = [&harness] {
    return harness.victim().stats().established_as_server;
  };
  harness.run_until(SimTime::from_seconds(kPreEndS));
  const std::uint64_t est_pre = established();
  harness.run_until(SimTime::from_seconds(kAttackEndS));
  const std::uint64_t est_attack = established();
  harness.run_until(SimTime::from_seconds(kEndS));
  const std::uint64_t est_post = established();

  const auto frac = [&harness](std::uint64_t established, double from_s,
                               double to_s) {
    const std::size_t attempts = harness.attempts_between(from_s, to_s);
    return attempts == 0 ? 0.0
                         : static_cast<double>(established) /
                               static_cast<double>(attempts);
  };
  r.goodput_pre = frac(est_pre, 0.0, kPreEndS);
  r.goodput_attack = frac(est_attack - est_pre, kPreEndS, kAttackEndS);
  r.goodput_post = frac(est_post - est_attack, kAttackEndS, kEndS);
  r.stats = controller.stats();
  r.victim_backlog_drops = harness.victim().stats().backlog_drops;
  r.cookie_engagements = harness.victim().stats().cookie_engagements;
  if (recorder.first_engaged_at()) {
    r.engaged_at_s = recorder.first_engaged_at()->to_seconds();
  }
  if (recorder.fully_released_at()) {
    r.recovered_at_s = recorder.fully_released_at()->to_seconds();
  }
  return r;
}

std::string pct(double fraction) {
  return util::format_double(100.0 * fraction, 1) + " %";
}

}  // namespace

int main() {
  bench::print_header(
      "mitigation_response",
      "Alarm-driven staged mitigation: victim goodput before / during / "
      "after a 200 SYN/s first-mile flood",
      "closes the loop on the paper's §4.2.3 response; staged policy = "
      "rate-limit -> quarantine with hysteresis + probe release");

  const Scenario scenarios[] = {
      {"none", mitigate::MitigationPolicy{}},
      {"ratelimit", mitigate::MitigationPolicy::rate_limit_only()},
      {"quarantine", mitigate::MitigationPolicy::quarantine_only()},
      {"cookies", mitigate::MitigationPolicy{}, /*victim_cookies=*/true},
      {"full", mitigate::MitigationPolicy::staged_defaults()},
      {"false_alarm", mitigate::MitigationPolicy::staged_defaults(),
       /*victim_cookies=*/false, /*flood=*/false, /*chaos_window=*/true},
  };

  util::TextTable table({"scenario", "pre", "attack", "post",
                         "flood SYNs dropped", "legit SYNs dropped",
                         "throttled", "quarantines"});
  double attack_none = 0.0;
  double attack_full = 0.0;
  double pre_full = 0.0;
  double post_full = 0.0;
  for (const Scenario& sc : scenarios) {
    const ScenarioResult r = run_scenario(sc);
    table.add_row(
        {sc.label, pct(r.goodput_pre), pct(r.goodput_attack),
         pct(r.goodput_post),
         util::format_count(
             static_cast<std::int64_t>(r.stats.dropped_attack_syns)),
         util::format_count(
             static_cast<std::int64_t>(r.stats.dropped_legit_syns)),
         util::format_count(
             static_cast<std::int64_t>(r.stats.throttled_syns)),
         util::format_count(
             static_cast<std::int64_t>(r.stats.quarantine_entries))});

    if (bench::Sidecar* sd = bench::sidecar()) {
      const std::string l = sc.label;
      sd->scalar("goodput_pre_" + l, r.goodput_pre);
      sd->scalar("goodput_attack_" + l, r.goodput_attack);
      sd->scalar("goodput_post_" + l, r.goodput_post);
      sd->scalar("dropped_attack_syns_" + l,
                 static_cast<double>(r.stats.dropped_attack_syns));
      sd->scalar("dropped_legit_syns_" + l,
                 static_cast<double>(r.stats.dropped_legit_syns));
      sd->scalar("quarantine_entries_" + l,
                 static_cast<double>(r.stats.quarantine_entries));
      sd->scalar("victim_backlog_drops_" + l,
                 static_cast<double>(r.victim_backlog_drops));
      if (std::string(sc.label) == "none" ||
          std::string(sc.label) == "full") {
        sd->series("victim_half_open_" + l, r.half_open_series);
      }
    }

    if (std::string(sc.label) == "none") attack_none = r.goodput_attack;
    if (std::string(sc.label) == "full") {
      attack_full = r.goodput_attack;
      pre_full = r.goodput_pre;
      post_full = r.goodput_post;
      if (bench::Sidecar* sd = bench::sidecar()) {
        if (r.engaged_at_s) {
          sd->scalar("time_to_mitigate_s", *r.engaged_at_s - kPreEndS);
        }
        if (r.recovered_at_s) {
          sd->scalar("time_to_recover_s", *r.recovered_at_s - kAttackEndS);
        }
        sd->scalar("escalations_full",
                   static_cast<double>(r.stats.escalations));
        sd->scalar("releases_full", static_cast<double>(r.stats.releases));
      }
    }
    if (std::string(sc.label) == "false_alarm") {
      if (bench::Sidecar* sd = bench::sidecar()) {
        sd->scalar("false_alarm_quarantines",
                   static_cast<double>(r.stats.quarantine_entries));
        sd->scalar("false_alarm_engagements",
                   static_cast<double>(r.stats.engagements));
        sd->scalar("false_alarm_vetoed_periods",
                   static_cast<double>(r.stats.vetoed_alarm_periods));
      }
    }
  }
  std::printf("%s", table.to_string().c_str());

  const double attack_ratio = attack_full / std::max(attack_none, 1e-3);
  const double recovery = pre_full > 0.0 ? post_full / pre_full : 0.0;
  if (bench::Sidecar* sd = bench::sidecar()) {
    sd->scalar("attack_ratio_full", attack_ratio);
    sd->scalar("recovery_full", recovery);
  }
  std::printf(
      "\nattack-window goodput, full staged policy vs none: %.1fx\n"
      "post-attack recovery vs pre-attack baseline:        %.3f\n",
      attack_ratio, recovery);
  std::printf(
      "\nexpected: unmitigated, the flood (200 SYN/s vs a ~1.7/s budget)\n"
      "zeroes the attack window and the 75 s half-open tail bleeds into\n"
      "the post window. The staged policy alarms within one period,\n"
      "throttles the station below the victim's budget, escalates to\n"
      "quarantine while the alarm persists, and releases through a probe\n"
      "once the capped CUSUM decays -- attack-window goodput >= 3x the\n"
      "unmitigated run and post-window goodput back to >= 95%% of the\n"
      "pre-attack baseline. SYN cookies recover the victim without any\n"
      "first-mile help (the victim-side defense the paper contrasts), and\n"
      "the chaos-window false alarm (dead return path, degraded health)\n"
      "engages nothing: zero quarantines, every alarm vetoed.\n");
  return 0;
}
