// Automated site tuning (paper §4.2.3 done by algorithm instead of by
// hand): AdaptiveSynDog trains on the site's own quiet traffic, then sets
// a = c + margin*sigma, h = 2a, N = 3(h - a).
//
// Compared against the universal parameters and the paper's hand-tuned
// UNC values (a=0.2, N=0.6) on sub-universal-floor floods.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/experiment.hpp"
#include "syndog/core/adaptive.hpp"
#include "syndog/detect/arl.hpp"
#include "syndog/detect/arl_bins.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

struct Row {
  double prob = 0.0;
  double delay = 0.0;
  int false_alarms = 0;
};

/// Runs trials where the detector trains on the first half of the trace
/// and the flood hits in the second half.
template <typename MakeDetector>
Row run(const trace::SiteSpec& spec, double fi, int trials,
        MakeDetector make) {
  Row row;
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 3000 + t),
        trace::kObservationPeriod);
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start = util::SimTime::minutes(22);  // after ~66 training periods
    flood.duration = util::SimTime::minutes(8);
    util::Rng rng(4000 + t);
    if (fi > 0.0) {
      ps.add_outbound_syns(trace::bucket_times(
          attack::generate_flood_times(flood, rng), ps.period, ps.size()));
    }
    auto detector = make();
    const std::int64_t onset = flood.start / ps.period;
    bool found = false;
    for (std::size_t n = 0; n < ps.size(); ++n) {
      const core::PeriodReport r =
          detector.observe_period(ps.out_syn[n], ps.in_syn_ack[n]);
      if (static_cast<std::int64_t>(n) < onset || fi <= 0.0) {
        row.false_alarms += r.alarm ? 1 : 0;
      } else if (r.alarm && !found) {
        found = true;
        ++detected;
        row.delay += static_cast<double>(static_cast<std::int64_t>(n) -
                                         onset);
      }
    }
  }
  row.prob = static_cast<double>(detected) / trials;
  if (detected > 0) row.delay /= detected;
  return row;
}

/// Adapter so SynDog and AdaptiveSynDog share the loop above.
struct FixedDetector {
  core::SynDog dog;
  core::PeriodReport observe_period(std::int64_t s, std::int64_t a) {
    return dog.observe_period(s, a);
  }
};

struct AdaptiveDetector {
  core::AdaptiveSynDog dog;
  core::PeriodReport observe_period(std::int64_t s, std::int64_t a) {
    return dog.observe_period(s, a);
  }
};

/// Smallest threshold N (on a 0.05 grid) whose scaled-Poisson ARL0 at
/// per-period rate `lambda` meets `target_periods` — the quietest-bin
/// sizing rule from docs: pick N for q1, not for the mean.
double min_threshold_for_budget(double lambda, double c, double a,
                                double target_periods) {
  for (double n = 0.05; n <= 3.0001; n += 0.05) {
    detect::PoissonArlSpec spec;
    spec.rate = c * lambda;
    spec.scale = 1.0 / lambda;
    spec.offset = a;
    spec.threshold = n;
    spec.states = 400;
    if (detect::cusum_average_run_length(spec) >= target_periods) {
      return n;
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

int main() {
  bench::print_header(
      "adaptive_tuning",
      "Adaptive site tuning at UNC (automating paper §4.2.3)",
      "hand-tuned a=0.2/N=0.6 lowers f_min from 37 to ~15 SYN/s; the "
      "adaptive detector should land in the same neighbourhood");

  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.duration = util::SimTime::minutes(34);  // train + attack window
  constexpr int kTrials = 10;

  // What does the adaptive detector learn?
  {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 3000), trace::kObservationPeriod);
    core::AdaptiveParams ap;
    core::AdaptiveSynDog dog(ap);
    for (std::size_t n = 0; n < ps.size(); ++n) {
      (void)dog.observe_period(ps.out_syn[n], ps.in_syn_ack[n]);
    }
    std::printf(
        "learned on one clean trace: c=%.4f sigma=%.4f -> a=%.3f N=%.3f "
        "(universal: a=0.35 N=1.05; paper hand-tuned: a=0.2 N=0.6)\n"
        "resulting detection floor: %.1f SYN/s (universal ~37, paper "
        "hand-tuned ~15)\n\n",
        dog.learned_c(), dog.learned_sigma(), dog.active_params().a,
        dog.active_params().threshold, dog.min_detectable_rate());

    // Does the learned (a, N) hold a false-alarm budget? Same
    // lambda-binned scaled-Poisson analysis as `syndog_tool
    // sensitivity` (detect/arl_bins.hpp): the site's diurnal swing
    // makes the quietest quartile, not the mean rate, set the realized
    // ARL0 — so the table below is evaluated per quantile bin.
    const double c = dog.learned_c();
    stats::OnlineStats k;
    std::vector<double> counts;
    counts.reserve(ps.size());
    for (std::size_t n = 0; n < ps.size(); ++n) {
      k.add(static_cast<double>(ps.in_syn_ack[n]));
      counts.push_back(static_cast<double>(ps.in_syn_ack[n]));
    }
    detect::BinnedArlSpec bins_spec;
    bins_spec.c = c;
    bins_spec.offset = dog.active_params().a;
    bins_spec.threshold = dog.active_params().threshold;
    const detect::BinnedArlResult budget =
        detect::binned_poisson_arl(counts, k.mean(), bins_spec);
    const double t0_s =
        trace::kObservationPeriod.to_seconds();
    util::TextTable arl_table({"lambda bin", "mean SYN/ACK per t0",
                               "ARL0 (periods)", "ARL0 (days)"});
    for (std::size_t b = 0; b < budget.bins.size(); ++b) {
      arl_table.add_row(
          {"q" + std::to_string(b + 1),
           util::format_double(budget.bins[b].lambda, 1),
           util::format_double(budget.bins[b].arl0, 0),
           util::format_double(budget.bins[b].arl0 * t0_s / 86400.0, 1)});
    }
    std::printf("false-alarm budget of the learned parameters "
                "(a=%.3f, N=%.3f):\n%s",
                bins_spec.offset, bins_spec.threshold,
                arl_table.to_string().c_str());
    std::printf("rate-averaged ARL0 over bins: %.0f periods; at the "
                "mean rate: %.0f\n\n",
                budget.combined_arl0, budget.mean_rate_arl0);

  }

  // Quietest-bin N sizing: for a range of sigma margins, the design
  // rule gives a = c + margin*sigma and N = 3a; the budget requires
  // the smallest N whose q1-bin ARL0 covers >= 30 days. The learned
  // detector is budget-safe iff its design N clears that floor, and
  // the sweep shows how much detection floor a tighter margin buys
  // before the quiet-hour budget gives out. At UNC volumes the Poisson
  // tail is invisible (any N holds the budget); at Auckland's small
  // lambda the q1 bin genuinely constrains N.
  {
    const double t0_s = trace::kObservationPeriod.to_seconds();
    const double target_periods = 30.0 * 86400.0 / t0_s;  // 30 days
    util::TextTable sizing({"site", "sigma margin", "a", "design N = 3a",
                            "min N for 30-day q1 ARL0",
                            "f_min (SYN/s)"});
    for (const trace::SiteId site :
         {trace::SiteId::kUnc, trace::SiteId::kAuckland}) {
      const trace::SiteSpec site_spec = trace::site_spec(site);
      const trace::PeriodSeries ps = trace::extract_periods(
          trace::generate_site_trace(site_spec, 3000),
          trace::kObservationPeriod);
      core::AdaptiveSynDog dog{core::AdaptiveParams{}};
      for (std::size_t n = 0; n < ps.size(); ++n) {
        (void)dog.observe_period(ps.out_syn[n], ps.in_syn_ack[n]);
      }
      const double c = dog.learned_c();
      const double sigma = dog.learned_sigma();
      stats::OnlineStats k;
      std::vector<double> counts;
      counts.reserve(ps.size());
      for (std::size_t n = 0; n < ps.size(); ++n) {
        k.add(static_cast<double>(ps.in_syn_ack[n]));
        counts.push_back(static_cast<double>(ps.in_syn_ack[n]));
      }
      detect::BinnedArlSpec bins_spec;
      bins_spec.c = c;
      bins_spec.offset = dog.active_params().a;
      bins_spec.threshold = dog.active_params().threshold;
      const detect::BinnedArlResult site_bins =
          detect::binned_poisson_arl(counts, k.mean(), bins_spec);
      const double q1_lambda = site_bins.bins.empty()
                                   ? k.mean()
                                   : site_bins.bins.front().lambda;
      for (const double margin : {1.0, 2.0, 3.0, 6.0}) {
        const double a = std::clamp(c + margin * sigma, 0.05, 0.35);
        const double n_min =
            min_threshold_for_budget(q1_lambda, c, a, target_periods);
        sizing.add_row(
            {site_spec.name, util::format_double(margin, 0),
             util::format_double(a, 3), util::format_double(3.0 * a, 3),
             util::format_double(n_min, 2),
             util::format_double(
                 core::SynDog::min_detectable_rate(
                     a, c, k.mean(), trace::kObservationPeriod),
                 1)});
      }
    }
    std::printf("%s", sizing.to_string().c_str());
    std::printf("\n");
  }

  util::TextTable table({"detector", "fi (SYN/s)", "detect prob",
                         "mean delay [t0]", "false alarms"});
  for (const double fi : {15.0, 20.0, 30.0, 45.0}) {
    const Row universal = run(spec, fi, kTrials, [] {
      return FixedDetector{core::SynDog(
          core::SynDogParams::paper_defaults())};
    });
    const Row hand = run(spec, fi, kTrials, [] {
      return FixedDetector{core::SynDog(
          core::SynDogParams::site_tuned_unc())};
    });
    const Row adaptive = run(spec, fi, kTrials, [] {
      return AdaptiveDetector{core::AdaptiveSynDog(
          core::AdaptiveParams{})};
    });
    table.add_row({"universal a=0.35 N=1.05", util::format_double(fi, 0),
                   util::format_double(universal.prob, 2),
                   util::format_double(universal.delay, 2),
                   std::to_string(universal.false_alarms)});
    table.add_row({"hand-tuned a=0.20 N=0.60", util::format_double(fi, 0),
                   util::format_double(hand.prob, 2),
                   util::format_double(hand.delay, 2),
                   std::to_string(hand.false_alarms)});
    table.add_row({"adaptive (trained)", util::format_double(fi, 0),
                   util::format_double(adaptive.prob, 2),
                   util::format_double(adaptive.delay, 2),
                   std::to_string(adaptive.false_alarms)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: universal parameters miss fi < 37 entirely; both tuned\n"
      "variants catch fi >= 15-20 with zero false alarms, with the\n"
      "adaptive detector matching the hand-tuned one without any manual\n"
      "analysis of the site. The design N = 3a clears the quietest-bin\n"
      "30-day budget at every margin; only small-lambda sites (Auckland)\n"
      "see the budget constrain N at all.\n");
  return 0;
}
