// Automated site tuning (paper §4.2.3 done by algorithm instead of by
// hand): AdaptiveSynDog trains on the site's own quiet traffic, then sets
// a = c + margin*sigma, h = 2a, N = 3(h - a).
//
// Compared against the universal parameters and the paper's hand-tuned
// UNC values (a=0.2, N=0.6) on sub-universal-floor floods.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/core/adaptive.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

namespace {

struct Row {
  double prob = 0.0;
  double delay = 0.0;
  int false_alarms = 0;
};

/// Runs trials where the detector trains on the first half of the trace
/// and the flood hits in the second half.
template <typename MakeDetector>
Row run(const trace::SiteSpec& spec, double fi, int trials,
        MakeDetector make) {
  Row row;
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 3000 + t),
        trace::kObservationPeriod);
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.start = util::SimTime::minutes(22);  // after ~66 training periods
    flood.duration = util::SimTime::minutes(8);
    util::Rng rng(4000 + t);
    if (fi > 0.0) {
      ps.add_outbound_syns(trace::bucket_times(
          attack::generate_flood_times(flood, rng), ps.period, ps.size()));
    }
    auto detector = make();
    const std::int64_t onset = flood.start / ps.period;
    bool found = false;
    for (std::size_t n = 0; n < ps.size(); ++n) {
      const core::PeriodReport r =
          detector.observe_period(ps.out_syn[n], ps.in_syn_ack[n]);
      if (static_cast<std::int64_t>(n) < onset || fi <= 0.0) {
        row.false_alarms += r.alarm ? 1 : 0;
      } else if (r.alarm && !found) {
        found = true;
        ++detected;
        row.delay += static_cast<double>(static_cast<std::int64_t>(n) -
                                         onset);
      }
    }
  }
  row.prob = static_cast<double>(detected) / trials;
  if (detected > 0) row.delay /= detected;
  return row;
}

/// Adapter so SynDog and AdaptiveSynDog share the loop above.
struct FixedDetector {
  core::SynDog dog;
  core::PeriodReport observe_period(std::int64_t s, std::int64_t a) {
    return dog.observe_period(s, a);
  }
};

struct AdaptiveDetector {
  core::AdaptiveSynDog dog;
  core::PeriodReport observe_period(std::int64_t s, std::int64_t a) {
    return dog.observe_period(s, a);
  }
};

}  // namespace

int main() {
  bench::print_header(
      "adaptive_tuning",
      "Adaptive site tuning at UNC (automating paper §4.2.3)",
      "hand-tuned a=0.2/N=0.6 lowers f_min from 37 to ~15 SYN/s; the "
      "adaptive detector should land in the same neighbourhood");

  trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  spec.duration = util::SimTime::minutes(34);  // train + attack window
  constexpr int kTrials = 10;

  // What does the adaptive detector learn?
  {
    trace::PeriodSeries ps = trace::extract_periods(
        trace::generate_site_trace(spec, 3000), trace::kObservationPeriod);
    core::AdaptiveParams ap;
    core::AdaptiveSynDog dog(ap);
    for (std::size_t n = 0; n < ps.size(); ++n) {
      (void)dog.observe_period(ps.out_syn[n], ps.in_syn_ack[n]);
    }
    std::printf(
        "learned on one clean trace: c=%.4f sigma=%.4f -> a=%.3f N=%.3f "
        "(universal: a=0.35 N=1.05; paper hand-tuned: a=0.2 N=0.6)\n"
        "resulting detection floor: %.1f SYN/s (universal ~37, paper "
        "hand-tuned ~15)\n\n",
        dog.learned_c(), dog.learned_sigma(), dog.active_params().a,
        dog.active_params().threshold, dog.min_detectable_rate());
  }

  util::TextTable table({"detector", "fi (SYN/s)", "detect prob",
                         "mean delay [t0]", "false alarms"});
  for (const double fi : {15.0, 20.0, 30.0, 45.0}) {
    const Row universal = run(spec, fi, kTrials, [] {
      return FixedDetector{core::SynDog(
          core::SynDogParams::paper_defaults())};
    });
    const Row hand = run(spec, fi, kTrials, [] {
      return FixedDetector{core::SynDog(
          core::SynDogParams::site_tuned_unc())};
    });
    const Row adaptive = run(spec, fi, kTrials, [] {
      return AdaptiveDetector{core::AdaptiveSynDog(
          core::AdaptiveParams{})};
    });
    table.add_row({"universal a=0.35 N=1.05", util::format_double(fi, 0),
                   util::format_double(universal.prob, 2),
                   util::format_double(universal.delay, 2),
                   std::to_string(universal.false_alarms)});
    table.add_row({"hand-tuned a=0.20 N=0.60", util::format_double(fi, 0),
                   util::format_double(hand.prob, 2),
                   util::format_double(hand.delay, 2),
                   std::to_string(hand.false_alarms)});
    table.add_row({"adaptive (trained)", util::format_double(fi, 0),
                   util::format_double(adaptive.prob, 2),
                   util::format_double(adaptive.delay, 2),
                   std::to_string(adaptive.false_alarms)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: universal parameters miss fi < 37 entirely; both tuned\n"
      "variants catch fi >= 15-20 with zero false alarms, with the\n"
      "adaptive detector matching the hand-tuned one without any manual\n"
      "analysis of the site.\n");
  return 0;
}
