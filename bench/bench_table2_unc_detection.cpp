// Reproduces Table 2: detection performance of the SYN-dog at UNC.
//
// Floods of rate fi in {37, 40, 45, 60, 80, 120} SYN/s, 10-minute
// duration, onset uniform in [3 min, 9 min] (the paper's setting), over an
// ensemble of trials. Paper values:
//   fi:    37    40     45    60  80  120
//   prob:  0.8   1.0    1.0   1.0 1.0 1.0
//   time:  19.8  13.25  8.65  4   2   1     (in 20 s observation periods)
#include <cstdio>

#include "common/experiment.hpp"
#include "common/sidecar.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "table2_unc_detection", "Table 2 -- detection performance at UNC",
      "f_min = 37 SYN/s; larger floods detected faster");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  bench::EnsembleConfig cfg;
  cfg.trials = 25;
  cfg.seed = 1000;
  cfg.start_min_s = 3 * 60.0;  // paper: random start between 3 and 9 min
  cfg.start_max_s = 9 * 60.0;

  bench::run_detection_table(spec, params, cfg,
                             {{37, 0.8, "19.80"},
                              {40, 1.0, "13.25"},
                              {45, 1.0, "8.65"},
                              {60, 1.0, "4.00"},
                              {80, 1.0, "2.00"},
                              {120, 1.0, "1.00"}},
                             /*fi_decimals=*/0);
  std::printf(
      "\n%d trials per rate; delay in observation periods (t0 = 20 s).\n"
      "Expected shape: probability ~0.7-0.9 at fi=37 (the detection floor)\n"
      "rising to 1.0 by fi=40, with delay falling monotonically from ~20\n"
      "periods to ~1-3 periods at fi=120.\n",
      cfg.trials);

  // Sidecar extras: the UNC calibration scalars this table rests on, and
  // the per-period CUSUM trajectory of one representative floor-rate trial
  // run through the instrumented SynDog (its counters/gauges land in the
  // sidecar "metrics" block, the per-period events in "events").
  const auto [k_bar, c] = bench::record_site_calibration(spec, "unc");
  std::printf("calibration: K-bar %.1f (paper ~2114), c %.4f (paper ~0.049)\n",
              k_bar, c);

  bench::Sidecar& side = *bench::sidecar();
  const bench::FloodTrial trial = bench::make_flood_trial(spec, 37.0, cfg, 0);
  const std::vector<core::PeriodReport> reports = core::run_over_series(
      params, trial.out_syn, trial.in_syn_ack, &side.tracer(),
      &side.registry());
  std::vector<double> yn;
  yn.reserve(reports.size());
  for (const core::PeriodReport& r : reports) yn.push_back(r.y);
  side.series("yn_fi37_trial0", std::move(yn));
  side.scalar("yn_fi37_onset_period", static_cast<double>(trial.onset_period));
  return 0;
}
