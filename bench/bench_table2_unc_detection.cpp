// Reproduces Table 2: detection performance of the SYN-dog at UNC.
//
// Floods of rate fi in {37, 40, 45, 60, 80, 120} SYN/s, 10-minute
// duration, onset uniform in [3 min, 9 min] (the paper's setting), over an
// ensemble of trials. Paper values:
//   fi:    37    40     45    60  80  120
//   prob:  0.8   1.0    1.0   1.0 1.0 1.0
//   time:  19.8  13.25  8.65  4   2   1     (in 20 s observation periods)
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header("Table 2 -- detection performance at UNC",
                      "f_min = 37 SYN/s; larger floods detected faster");

  struct PaperRow {
    double fi;
    double prob;
    double delay;
  };
  const PaperRow paper[] = {{37, 0.8, 19.8}, {40, 1.0, 13.25},
                            {45, 1.0, 8.65}, {60, 1.0, 4.0},
                            {80, 1.0, 2.0},  {120, 1.0, 1.0}};

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const core::SynDogParams params = core::SynDogParams::paper_defaults();
  bench::EnsembleConfig cfg;
  cfg.trials = 25;
  cfg.seed = 1000;
  cfg.start_min_s = 3 * 60.0;  // paper: random start between 3 and 9 min
  cfg.start_max_s = 9 * 60.0;

  util::TextTable table({"fi (SYN/s)", "Detect prob (paper)",
                         "Detect time [t0] (paper)", "max delay",
                         "false alarms"});
  for (const PaperRow& row : paper) {
    const bench::DetectionRow r =
        bench::detection_ensemble(spec, row.fi, params, cfg);
    table.add_row(
        {util::format_double(row.fi, 0),
         util::format_double(r.detection_probability, 2) + "  (" +
             util::format_double(row.prob, 2) + ")",
         util::format_double(r.mean_delay_periods, 2) + "  (" +
             util::format_double(row.delay, 2) + ")",
         util::format_double(r.max_delay_periods, 0),
         std::to_string(r.false_alarm_periods)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\n%d trials per rate; delay in observation periods (t0 = 20 s).\n"
      "Expected shape: probability ~0.7-0.9 at fi=37 (the detection floor)\n"
      "rising to 1.0 by fi=40, with delay falling monotonically from ~20\n"
      "periods to ~1-3 periods at fi=120.\n",
      cfg.trials);
  return 0;
}
