// Reproduces Figure 9 / §4.2.3: site-tuned sensitivity at UNC.
//
// A network administrator who trusts the site's low normal-mode variance
// can drop a from 0.35 to 0.2 and N from 1.05 to 0.6. The paper: this
// lowers the detection floor f_min from 37 to ~15 SYN/s without incurring
// additional false alarms; Fig. 9 shows yn for fi = 15 under the tuned
// parameters.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

using namespace syndog;

int main() {
  bench::print_header(
      "fig9_tuned_sensitivity",
      "Figure 9 -- site-tuned detection sensitivity at UNC (a=0.2, N=0.6)",
      "f_min drops 37 -> ~15 SYN/s with no extra false alarms");

  const trace::SiteSpec spec = trace::site_spec(trace::SiteId::kUnc);
  const core::SynDogParams universal = core::SynDogParams::paper_defaults();
  const core::SynDogParams tuned = core::SynDogParams::site_tuned_unc();

  // The figure: yn at fi = 15 under tuned parameters. fi = 15 sits right
  // at the tuned detection floor (a - c) * K / t0, so — exactly as in the
  // paper's Fig. 9 — yn crawls upward across the whole trace rather than
  // jumping; we let the flood run to the end of the capture to show it.
  bench::EnsembleConfig fig_cfg;
  fig_cfg.seed = 1000;
  fig_cfg.start_min_s = 5 * 60.0;
  fig_cfg.start_max_s = 5 * 60.0;
  fig_cfg.flood_duration = util::SimTime::minutes(25);
  const std::vector<double> path15 =
      bench::statistic_path(spec, 15.0, tuned, fig_cfg);
  // Our calibrated trace has c ~ 0.049, putting the tuned floor at
  // (a - c) * K / t0 ~ 16.3 SYN/s; 18 SYN/s sits just above it and shows
  // the slow at-the-floor climb the paper's figure depicts.
  const std::vector<double> path18 =
      bench::statistic_path(spec, 18.0, tuned, fig_cfg);
  bench::print_series_chart(
      "Fig. 9 UNC, tuned a=0.2 N=0.6, flood from period 15 to the end",
      {{"yn at fi=15 (at the floor)", path15},
       {"yn at fi=18 (just above the floor)", path18}},
      "observation period n", tuned.threshold);
  std::printf("  fi=15 crosses at period %td, fi=18 at period %td "
              "(paper's figure shows the same slow accumulation)\n",
              stats::first_crossing(path15, tuned.threshold),
              stats::first_crossing(path18, tuned.threshold));

  // The claim: detection probability at fi=15 jumps under tuning, and the
  // tuned detector still raises no false alarm on clean traces.
  bench::EnsembleConfig cfg;
  cfg.trials = 25;
  cfg.seed = 1000;
  cfg.start_min_s = 3 * 60.0;
  cfg.start_max_s = 9 * 60.0;

  util::TextTable table({"parameters", "fi (SYN/s)", "detect prob",
                         "mean delay [t0]", "false alarms"});
  for (const double fi : {15.0, 20.0, 37.0}) {
    for (const auto& [name, params] :
         {std::pair{"universal a=0.35 N=1.05", universal},
          std::pair{"tuned     a=0.20 N=0.60", tuned}}) {
      const bench::DetectionRow r =
          bench::detection_ensemble(spec, fi, params, cfg);
      table.add_row({name, util::format_double(fi, 0),
                     util::format_double(r.detection_probability, 2),
                     util::format_double(r.mean_delay_periods, 2),
                     std::to_string(r.false_alarm_periods)});
    }
  }
  // False-alarm check on attack-free traces under tuned parameters.
  const bench::DetectionRow clean =
      bench::detection_ensemble(spec, 0.0, tuned, cfg);
  table.add_row({"tuned, no attack", "0", "-", "-",
                 std::to_string(clean.false_alarm_periods)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nexpected: universal parameters cannot see fi=15-37 (prob ~0-0.6);\n"
      "the tuned detector reliably catches fi>=20 and speeds up fi=37 by\n"
      "~5x. fi=15 is exactly at the tuned floor, so its detection is\n"
      "marginal and slow -- the same behaviour the paper's Fig. 9 shows.\n"
      "Tuning costs a little margin: very rare disruption spikes may now\n"
      "graze N=0.6 (the paper tuned against its own trace's spikes).\n");
  return 0;
}
