#include "common/victim_load.hpp"

#include <algorithm>

namespace syndog::bench {

namespace {

sim::StubNetworkParams net_params(const VictimLoadConfig& cfg) {
  sim::StubNetworkParams params;
  params.num_hosts = cfg.num_hosts;
  params.seed = cfg.seed;
  // Deterministic victim reachability: goodput differences must come
  // from the backlog (and any mitigation), not from cloud loss.
  params.cloud.no_answer_probability = 0.0;
  return params;
}

}  // namespace

VictimLoadHarness::VictimLoadHarness(const VictimLoadConfig& cfg)
    : net_(net_params(cfg)) {
  victim_ =
      &net_.add_internet_host("victim", cfg.victim_ip, cfg.victim_params);
  victim_->listen(80);

  util::Rng rng(cfg.seed);
  for (double t = cfg.legit_start_s; t < cfg.legit_end_s;
       t += rng.exponential_mean(cfg.legit_interarrival_mean_s)) {
    const auto client =
        static_cast<std::uint32_t>(rng.uniform_int(1, cfg.num_hosts));
    net_.scheduler().schedule_at(util::SimTime::from_seconds(t),
                                 [this, client, ip = victim_->ip()] {
                                   net_.host(client).connect(ip, 80);
                                 });
    attempt_times_.push_back(t);
  }

  if (cfg.flood_rate > 0.0) {
    attack::FloodSpec flood;
    flood.rate = cfg.flood_rate;
    flood.start = cfg.flood_start;
    flood.duration = cfg.flood_duration;
    util::Rng frng(cfg.seed ^ 0xf);
    net_.launch_flood(cfg.flood_host,
                      attack::generate_flood_times(flood, frng),
                      victim_->ip(), 80, cfg.spoof_pool);
  }

  if (cfg.background_rate > 0.0) {
    util::Rng brng(cfg.seed ^ 0xb);
    std::vector<util::SimTime> times;
    for (double t = cfg.legit_start_s; t < cfg.legit_end_s;
         t += brng.exponential_mean(1.0 / cfg.background_rate)) {
      times.push_back(util::SimTime::from_seconds(t));
    }
    net_.schedule_outbound_background(times);
  }
}

std::size_t VictimLoadHarness::attempts_between(double from_s,
                                                double to_s) const {
  const auto lo = std::lower_bound(attempt_times_.begin(),
                                   attempt_times_.end(), from_s);
  const auto hi =
      std::lower_bound(attempt_times_.begin(), attempt_times_.end(), to_s);
  return static_cast<std::size_t>(hi - lo);
}

std::uint64_t VictimLoadHarness::established_total() {
  std::uint64_t established = 0;
  for (std::uint32_t h = 1; h <= net_.host_count(); ++h) {
    established += net_.host(h).stats().established_as_client;
  }
  return established;
}

}  // namespace syndog::bench
