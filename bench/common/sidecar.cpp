#include "common/sidecar.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "syndog/obs/export.hpp"
#include "syndog/obs/json.hpp"
#include "syndog/util/config.hpp"

namespace syndog::bench {

namespace {

// A generous ring: the longest bench trial is ~5400 periods, each emitting
// a rollover + a CUSUM update, so 64k events hold several trials.
constexpr std::size_t kTracerCapacity = 1 << 16;

// Bench harness singleton: bench binaries are single-threaded and the
// pointer is written once at startup, read once by the atexit hook.
// syndog-lint: allow-next-line(concurrency.shared_mutable_static) -- single-threaded bench singleton
std::unique_ptr<Sidecar> g_sidecar;

void write_sidecar_at_exit() {
  if (!g_sidecar) return;
  try {
    const std::string path = g_sidecar->write();
    std::fprintf(stderr, "sidecar: wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sidecar: write failed: %s\n", e.what());
  }
}

void append_json_object(
    std::string& out, const char* key,
    const std::map<std::string, double, std::less<>>& values) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += obs::json_string(name);
    out += ':';
    out += obs::json_number(value);
  }
  out += '}';
}

}  // namespace

Sidecar::Sidecar(std::string name)
    : name_(std::move(name)), tracer_(kTracerCapacity) {
  if (name_.empty()) {
    throw std::invalid_argument("sidecar: experiment name must be non-empty");
  }
}

void Sidecar::scalar(const std::string& key, double value) {
  scalars_[key] = value;
}

void Sidecar::text(const std::string& key, std::string value) {
  text_[key] = std::move(value);
}

void Sidecar::series(const std::string& key, std::vector<double> values) {
  series_[key] = std::move(values);
}

std::string Sidecar::to_json() const {
  std::string out = "{\"name\":";
  out += obs::json_string(name_);
  out += ",\"schema\":\"syndog-bench/1\",";
  append_json_object(out, "scalars", scalars_);
  out += ",\"text\":{";
  bool first = true;
  for (const auto& [key, value] : text_) {
    if (!first) out += ',';
    first = false;
    out += obs::json_string(key);
    out += ':';
    out += obs::json_string(value);
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& [key, values] : series_) {
    if (!first) out += ',';
    first = false;
    out += obs::json_string(key);
    out += ":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out += ',';
      out += obs::json_number(values[i]);
    }
    out += ']';
  }
  out += "},\"metrics\":";
  out += registry_.snapshot().to_json();
  out += ",\"events\":{\"recorded\":";
  out += obs::json_number(static_cast<std::uint64_t>(tracer_.size()));
  out += ",\"dropped\":";
  out += obs::json_number(tracer_.dropped());
  out += "}}\n";
  return out;
}

std::string Sidecar::write() const {
  const std::optional<std::string> dir = util::env_var("SYNDOG_BENCH_DIR");
  std::string path =
      dir && !dir->empty() ? *dir : std::string(".");
  path += "/BENCH_";
  path += name_;
  path += ".json";
  obs::write_file(path, to_json());
  return path;
}

Sidecar& open_sidecar(const std::string& name) {
  if (g_sidecar) {
    if (g_sidecar->name() != name) {
      std::string msg = "sidecar: '";
      msg += g_sidecar->name();
      msg += "' already open; cannot open '";
      msg += name;
      msg += '\'';
      throw std::logic_error(msg);
    }
    return *g_sidecar;
  }
  g_sidecar = std::make_unique<Sidecar>(name);
  std::atexit(write_sidecar_at_exit);
  return *g_sidecar;
}

Sidecar* sidecar() { return g_sidecar.get(); }

}  // namespace syndog::bench
