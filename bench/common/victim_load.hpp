// Shared victim-load harness (bench_victim_goodput and
// bench_mitigation_response): a stub network whose hosts open legitimate
// connections to an Internet-side victim server at exponential
// interarrivals, optionally while one compromised stub host floods the
// victim with spoofed-source SYNs.
//
// The construction order is part of the contract: the victim host is
// created (and put in LISTEN) *before* the workload Rng is seeded, and
// the legit scheduling loop draws interarrival-then-client for every
// attempt. That pins the draw sequence bench_victim_goodput has always
// used, so promoting the harness changed no published numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "syndog/attack/flood.hpp"
#include "syndog/sim/network.hpp"

namespace syndog::bench {

struct VictimLoadConfig {
  std::uint32_t num_hosts = 20;
  std::uint64_t seed = 42;
  net::Ipv4Address victim_ip = net::Ipv4Address(198, 51, 100, 10);
  sim::TcpHostParams victim_params;  ///< backlog / timeout / SYN cookies
  /// Legit workload: a random stub host connects to the victim at
  /// exponential interarrivals over [legit_start_s, legit_end_s).
  double legit_start_s = 1.0;
  double legit_end_s = 120.0;
  double legit_interarrival_mean_s = 0.1;
  /// Spoofed flood from stub host `flood_host`; rate <= 0 disables.
  double flood_rate = 0.0;
  util::SimTime flood_start = util::SimTime::zero();
  util::SimTime flood_duration = util::SimTime::minutes(2);
  std::uint32_t flood_host = 1;
  net::Ipv4Prefix spoof_pool = *net::Ipv4Prefix::parse("240.0.0.0/8");
  /// Background connections from random stub hosts to random *other*
  /// Internet servers over the same window as the legit load (rate in
  /// conn/s; 0 disables). This is the paper's stub traffic model — the
  /// SYN/ACK stream a first-mile agent calibrates on comes from many
  /// destinations, so one victim's backlog collapse cannot zero it and
  /// trip the agent's dead-return-path heuristic. Scheduled after the
  /// legit loop from an independent Rng stream: enabling it never shifts
  /// the legit draw sequence.
  double background_rate = 0.0;
};

class VictimLoadHarness {
 public:
  explicit VictimLoadHarness(const VictimLoadConfig& cfg);

  [[nodiscard]] sim::StubNetworkSim& net() { return net_; }
  [[nodiscard]] sim::TcpHost& victim() { return *victim_; }
  void run_until(util::SimTime end) { net_.run_until(end); }

  /// Legit connection attempts scheduled, in time order (seconds).
  [[nodiscard]] const std::vector<double>& attempt_times() const {
    return attempt_times_;
  }
  [[nodiscard]] std::size_t legit_attempts() const {
    return attempt_times_.size();
  }
  /// Attempts whose start time falls in [from_s, to_s).
  [[nodiscard]] std::size_t attempts_between(double from_s,
                                             double to_s) const;
  /// Sum of established_as_client over every stub host — completed legit
  /// handshakes (the flood bypasses the TCP stacks, so it never counts).
  /// Non-const because StubNetworkSim::host() is a mutable accessor.
  [[nodiscard]] std::uint64_t established_total();

 private:
  sim::StubNetworkSim net_;
  sim::TcpHost* victim_ = nullptr;
  std::vector<double> attempt_times_;
};

}  // namespace syndog::bench
