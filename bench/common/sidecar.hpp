// Machine-readable bench results.
//
// Every bench binary gets a process-wide Sidecar (opened by print_header)
// that accumulates named scalars, text notes, and per-period series next to
// the human-readable stdout report, and writes them as BENCH_<name>.json at
// normal process exit. CI's bench-smoke job validates the files against
// tools/check_bench_json.py, so regressions in the headline numbers (K-bar,
// detection probability, delay) become diffable artifacts instead of log
// prose.
//
// The sidecar also owns an obs::Registry and an obs::EventTracer; benches
// that drive instrumented components (core::SynDog, sim::Scheduler) attach
// these so the exported "metrics" block reflects the run.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "syndog/obs/metrics.hpp"
#include "syndog/obs/trace.hpp"

namespace syndog::bench {

class Sidecar {
 public:
  /// `name` becomes the BENCH_<name>.json filename; keep it a short
  /// [a-z0-9_] experiment id (e.g. "table2_unc_detection").
  explicit Sidecar(std::string name);

  void scalar(const std::string& key, double value);
  void text(const std::string& key, std::string value);
  void series(const std::string& key, std::vector<double> values);

  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] obs::EventTracer& tracer() { return tracer_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<name>.json into $SYNDOG_BENCH_DIR (or the CWD when
  /// unset) and returns the path. Throws std::runtime_error on I/O failure.
  std::string write() const;

 private:
  std::string name_;
  std::map<std::string, double, std::less<>> scalars_;
  std::map<std::string, std::string, std::less<>> text_;
  std::map<std::string, std::vector<double>, std::less<>> series_;
  obs::Registry registry_;
  obs::EventTracer tracer_;
};

/// Opens the process-wide sidecar (idempotent for the same name; throws if
/// a different name is already open) and registers an atexit hook that
/// writes it. print_header calls this, so benches normally just use
/// sidecar() afterwards.
Sidecar& open_sidecar(const std::string& name);

/// The process-wide sidecar, or nullptr before open_sidecar/print_header.
[[nodiscard]] Sidecar* sidecar();

}  // namespace syndog::bench
