// Shared harness for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper; these
// helpers implement the common experiment loop: generate a calibrated site
// trace, inject a flood, run SYN-dog over the per-period counts, and
// aggregate detection probability / delay over a trial ensemble.
//
// Conventions (documented in EXPERIMENTS.md):
//  * detection delay is measured in observation periods, as
//    (first alarm period) - (attack onset period);
//  * a trial counts as detected only if the alarm fires while the flood is
//    still active (the paper's 10-minute window).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "syndog/attack/flood.hpp"
#include "syndog/core/syndog.hpp"
#include "syndog/trace/site.hpp"

namespace syndog::bench {

struct DetectionRow {
  double fi = 0.0;                ///< flood rate at the outbound sniffer
  double detection_probability = 0.0;
  double mean_delay_periods = 0.0;  ///< over detected trials
  double max_delay_periods = 0.0;
  int trials = 0;
  int false_alarm_periods = 0;    ///< alarms before onset, summed
};

struct EnsembleConfig {
  int trials = 20;
  std::uint64_t seed = 1;
  /// Attack onset uniform in [start_min_s, start_max_s] (paper: 3-9 min
  /// for UNC, 3-136 min for Auckland).
  double start_min_s = 180.0;
  double start_max_s = 540.0;
  util::SimTime flood_duration = util::SimTime::minutes(10);
  attack::FloodShape shape = attack::FloodShape::kConstant;
};

/// One trial's materialized series plus its attack geometry.
struct FloodTrial {
  std::vector<std::int64_t> out_syn;
  std::vector<std::int64_t> in_syn_ack;
  std::int64_t onset_period = 0;
  std::int64_t flood_end_period = 0;  ///< last period containing flood SYNs
};

/// Builds trial `index` of an ensemble: background trace (seeded by
/// `cfg.seed` + index) with a flood of rate `fi` mixed in. `fi <= 0` means
/// no attack (onset/flood_end are set past the series end).
[[nodiscard]] FloodTrial make_flood_trial(const trace::SiteSpec& spec,
                                          double fi,
                                          const EnsembleConfig& cfg,
                                          int index);

/// Runs `cfg.trials` trials of rate `fi` through SYN-dog and aggregates
/// the table row. Background traces depend only on (cfg.seed, index), so
/// rows of a rate sweep share their backgrounds — the paper's
/// trace-driven methodology, and much faster than regenerating.
[[nodiscard]] DetectionRow detection_ensemble(const trace::SiteSpec& spec,
                                              double fi,
                                              const core::SynDogParams& params,
                                              const EnsembleConfig& cfg);

/// The {yn} trajectory of a single representative trial (figures 7-9).
[[nodiscard]] std::vector<double> statistic_path(const trace::SiteSpec& spec,
                                                 double fi,
                                                 const core::SynDogParams&
                                                     params,
                                                 const EnsembleConfig& cfg,
                                                 int index = 0);

/// Paper row of a detection table (Tables 2/3): the published probability
/// and delay for one flood rate. `paper_delay` is text because the paper
/// prints "<1" for sub-period delays.
struct PaperDetectionRow {
  double fi = 0.0;
  double paper_prob = 0.0;
  std::string paper_delay;
};

/// Runs the rate sweep of a detection table, prints the measured-vs-paper
/// comparison, and (when the sidecar is open) records the measured columns
/// as series keyed "fi", "detection_probability", "mean_delay_periods",
/// "max_delay_periods", "false_alarm_periods". `fi_decimals` controls how
/// the rate column is printed (0 for UNC's integers, 2 for Auckland's).
std::vector<DetectionRow> run_detection_table(
    const trace::SiteSpec& spec, const core::SynDogParams& params,
    const EnsembleConfig& cfg, const std::vector<PaperDetectionRow>& paper,
    int fi_decimals = 0);

/// Measures the site's calibration scalars from one clean seeded trace:
/// K-bar (mean SYN/ACK count per observation period) and c (mean of
/// (SYN - SYN/ACK)/K-bar, the normal-operation drift of Xn). Records them
/// into the open sidecar as "<prefix>_k_bar" / "<prefix>_c" and returns
/// {k_bar, c}. UNC calibrates to K-bar ~2114, c ~0.049 (EXPERIMENTS.md).
std::pair<double, double> record_site_calibration(const trace::SiteSpec& spec,
                                                  const std::string& prefix,
                                                  std::uint64_t seed = 42);

/// Prints the standard bench header and opens the BENCH_<id>.json sidecar
/// (written automatically at exit; see sidecar.hpp). `experiment_id` is the
/// sidecar name; `title` and `paper_reference` are the human-readable
/// header lines.
void print_header(const std::string& experiment_id, const std::string& title,
                  const std::string& paper_reference);

/// Renders a per-period series chart (used by the figure benches).
void print_series_chart(const std::string& title,
                        const std::vector<std::pair<std::string,
                                                    std::vector<double>>>&
                            series,
                        const std::string& x_label, double threshold = 0.0,
                        double y_max = 0.0);

}  // namespace syndog::bench
