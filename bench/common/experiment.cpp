#include "experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "syndog/trace/periods.hpp"
#include "syndog/util/table.hpp"

namespace syndog::bench {

FloodTrial make_flood_trial(const trace::SiteSpec& spec, double fi,
                            const EnsembleConfig& cfg, int index) {
  const trace::ConnectionTrace background = trace::generate_site_trace(
      spec, cfg.seed + static_cast<std::uint64_t>(index));
  trace::PeriodSeries periods =
      trace::extract_periods(background, trace::kObservationPeriod);

  FloodTrial trial;
  trial.onset_period = static_cast<std::int64_t>(periods.size());
  trial.flood_end_period = static_cast<std::int64_t>(periods.size());

  if (fi > 0.0) {
    util::Rng rng = util::Rng::child(cfg.seed ^ 0xa77ac4,
                                     static_cast<std::uint64_t>(index));
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.shape = cfg.shape;
    flood.start = util::SimTime::from_seconds(
        rng.uniform(cfg.start_min_s, cfg.start_max_s));
    flood.duration = cfg.flood_duration;
    const std::vector<util::SimTime> times =
        attack::generate_flood_times(flood, rng);
    periods.add_outbound_syns(
        trace::bucket_times(times, periods.period, periods.size()));

    trial.onset_period = flood.start / periods.period;
    trial.flood_end_period =
        std::min<std::int64_t>((flood.start + flood.duration) /
                                   periods.period,
                               static_cast<std::int64_t>(periods.size()) - 1);
  }
  trial.out_syn = std::move(periods.out_syn);
  trial.in_syn_ack = std::move(periods.in_syn_ack);
  return trial;
}

DetectionRow detection_ensemble(const trace::SiteSpec& spec, double fi,
                                const core::SynDogParams& params,
                                const EnsembleConfig& cfg) {
  DetectionRow row;
  row.fi = fi;
  row.trials = cfg.trials;
  double delay_sum = 0.0;
  int detected = 0;

  for (int t = 0; t < cfg.trials; ++t) {
    const FloodTrial trial = make_flood_trial(spec, fi, cfg, t);
    const std::vector<core::PeriodReport> reports =
        core::run_over_series(params, trial.out_syn, trial.in_syn_ack);

    for (std::int64_t n = 0; n < trial.onset_period &&
                             n < static_cast<std::int64_t>(reports.size());
         ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++row.false_alarm_periods;
      }
    }
    for (std::int64_t n = trial.onset_period;
         n <= trial.flood_end_period &&
         n < static_cast<std::int64_t>(reports.size());
         ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++detected;
        const double delay = static_cast<double>(n - trial.onset_period);
        delay_sum += delay;
        row.max_delay_periods = std::max(row.max_delay_periods, delay);
        break;
      }
    }
  }
  row.detection_probability =
      static_cast<double>(detected) / static_cast<double>(cfg.trials);
  row.mean_delay_periods = detected == 0 ? 0.0 : delay_sum / detected;
  return row;
}

std::vector<double> statistic_path(const trace::SiteSpec& spec, double fi,
                                   const core::SynDogParams& params,
                                   const EnsembleConfig& cfg, int index) {
  const FloodTrial trial = make_flood_trial(spec, fi, cfg, index);
  const std::vector<core::PeriodReport> reports =
      core::run_over_series(params, trial.out_syn, trial.in_syn_ack);
  std::vector<double> path;
  path.reserve(reports.size());
  for (const core::PeriodReport& r : reports) path.push_back(r.y);
  return path;
}

void print_header(const std::string& experiment,
                  const std::string& paper_reference) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_reference.c_str());
  std::printf("==============================================================="
              "=\n");
}

void print_series_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const std::string& x_label, double threshold, double y_max) {
  util::AsciiChartOptions opts;
  opts.width = 100;
  opts.height = 15;
  opts.x_label = x_label;
  opts.y_max = y_max;
  util::AsciiChart chart(opts);
  for (const auto& [name, values] : series) {
    chart.add_series(name, values);
  }
  if (threshold > 0.0) {
    chart.add_threshold("flooding threshold N", threshold);
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), chart.to_string().c_str());
}

}  // namespace syndog::bench
