#include "experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "common/sidecar.hpp"
#include "syndog/stats/online.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"
#include "syndog/util/table.hpp"

namespace syndog::bench {

FloodTrial make_flood_trial(const trace::SiteSpec& spec, double fi,
                            const EnsembleConfig& cfg, int index) {
  const trace::ConnectionTrace background = trace::generate_site_trace(
      spec, cfg.seed + static_cast<std::uint64_t>(index));
  trace::PeriodSeries periods =
      trace::extract_periods(background, trace::kObservationPeriod);

  FloodTrial trial;
  trial.onset_period = static_cast<std::int64_t>(periods.size());
  trial.flood_end_period = static_cast<std::int64_t>(periods.size());

  if (fi > 0.0) {
    util::Rng rng = util::Rng::child(cfg.seed ^ 0xa77ac4,
                                     static_cast<std::uint64_t>(index));
    attack::FloodSpec flood;
    flood.rate = fi;
    flood.shape = cfg.shape;
    flood.start = util::SimTime::from_seconds(
        rng.uniform(cfg.start_min_s, cfg.start_max_s));
    flood.duration = cfg.flood_duration;
    const std::vector<util::SimTime> times =
        attack::generate_flood_times(flood, rng);
    periods.add_outbound_syns(
        trace::bucket_times(times, periods.period, periods.size()));

    trial.onset_period = flood.start / periods.period;
    trial.flood_end_period =
        std::min<std::int64_t>((flood.start + flood.duration) /
                                   periods.period,
                               static_cast<std::int64_t>(periods.size()) - 1);
  }
  trial.out_syn = std::move(periods.out_syn);
  trial.in_syn_ack = std::move(periods.in_syn_ack);
  return trial;
}

DetectionRow detection_ensemble(const trace::SiteSpec& spec, double fi,
                                const core::SynDogParams& params,
                                const EnsembleConfig& cfg) {
  DetectionRow row;
  row.fi = fi;
  row.trials = cfg.trials;
  double delay_sum = 0.0;
  int detected = 0;

  for (int t = 0; t < cfg.trials; ++t) {
    const FloodTrial trial = make_flood_trial(spec, fi, cfg, t);
    const std::vector<core::PeriodReport> reports =
        core::run_over_series(params, trial.out_syn, trial.in_syn_ack);

    for (std::int64_t n = 0; n < trial.onset_period &&
                             n < static_cast<std::int64_t>(reports.size());
         ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++row.false_alarm_periods;
      }
    }
    for (std::int64_t n = trial.onset_period;
         n <= trial.flood_end_period &&
         n < static_cast<std::int64_t>(reports.size());
         ++n) {
      if (reports[static_cast<std::size_t>(n)].alarm) {
        ++detected;
        const double delay = static_cast<double>(n - trial.onset_period);
        delay_sum += delay;
        row.max_delay_periods = std::max(row.max_delay_periods, delay);
        break;
      }
    }
  }
  row.detection_probability =
      static_cast<double>(detected) / static_cast<double>(cfg.trials);
  row.mean_delay_periods = detected == 0 ? 0.0 : delay_sum / detected;
  return row;
}

std::vector<double> statistic_path(const trace::SiteSpec& spec, double fi,
                                   const core::SynDogParams& params,
                                   const EnsembleConfig& cfg, int index) {
  const FloodTrial trial = make_flood_trial(spec, fi, cfg, index);
  const std::vector<core::PeriodReport> reports =
      core::run_over_series(params, trial.out_syn, trial.in_syn_ack);
  std::vector<double> path;
  path.reserve(reports.size());
  for (const core::PeriodReport& r : reports) path.push_back(r.y);
  return path;
}

std::vector<DetectionRow> run_detection_table(
    const trace::SiteSpec& spec, const core::SynDogParams& params,
    const EnsembleConfig& cfg, const std::vector<PaperDetectionRow>& paper,
    int fi_decimals) {
  util::TextTable table({"fi (SYN/s)", "Detect prob (paper)",
                         "Detect time [t0] (paper)", "max delay",
                         "false alarms"});
  std::vector<DetectionRow> rows;
  rows.reserve(paper.size());
  for (const PaperDetectionRow& row : paper) {
    const DetectionRow r = detection_ensemble(spec, row.fi, params, cfg);
    table.add_row(
        {util::format_double(row.fi, fi_decimals),
         util::format_double(r.detection_probability, 2) + "  (" +
             util::format_double(row.paper_prob, 2) + ")",
         util::format_double(r.mean_delay_periods, 2) + "  (" +
             row.paper_delay + ")",
         util::format_double(r.max_delay_periods, 0),
         std::to_string(r.false_alarm_periods)});
    rows.push_back(r);
  }
  std::printf("%s", table.to_string().c_str());

  if (Sidecar* side = sidecar()) {
    std::vector<double> fi, prob, mean_delay, max_delay, false_alarms;
    for (const DetectionRow& r : rows) {
      fi.push_back(r.fi);
      prob.push_back(r.detection_probability);
      mean_delay.push_back(r.mean_delay_periods);
      max_delay.push_back(r.max_delay_periods);
      false_alarms.push_back(static_cast<double>(r.false_alarm_periods));
    }
    side->series("fi", std::move(fi));
    side->series("detection_probability", std::move(prob));
    side->series("mean_delay_periods", std::move(mean_delay));
    side->series("max_delay_periods", std::move(max_delay));
    side->series("false_alarm_periods", std::move(false_alarms));
    side->scalar("trials_per_rate", cfg.trials);
  }
  return rows;
}

std::pair<double, double> record_site_calibration(const trace::SiteSpec& spec,
                                                  const std::string& prefix,
                                                  std::uint64_t seed) {
  const trace::ConnectionTrace tr = trace::generate_site_trace(spec, seed);
  const trace::PeriodSeries ps =
      trace::extract_periods(tr, trace::kObservationPeriod);
  stats::OnlineStats k_stats;
  stats::OnlineStats delta_stats;
  for (std::size_t i = 0; i < ps.in_syn_ack.size(); ++i) {
    k_stats.add(static_cast<double>(ps.in_syn_ack[i]));
    delta_stats.add(static_cast<double>(ps.out_syn[i] - ps.in_syn_ack[i]));
  }
  const double k_bar = k_stats.mean();
  const double c = k_bar > 0.0 ? delta_stats.mean() / k_bar : 0.0;
  if (Sidecar* side = sidecar()) {
    side->scalar(prefix + "_k_bar", k_bar);
    side->scalar(prefix + "_c", c);
  }
  return {k_bar, c};
}

void print_header(const std::string& experiment_id, const std::string& title,
                  const std::string& paper_reference) {
  Sidecar& side = open_sidecar(experiment_id);
  side.text("title", title);
  side.text("paper_reference", paper_reference);
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_reference.c_str());
  std::printf("==============================================================="
              "=\n");
}

void print_series_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const std::string& x_label, double threshold, double y_max) {
  util::AsciiChartOptions opts;
  opts.width = 100;
  opts.height = 15;
  opts.x_label = x_label;
  opts.y_max = y_max;
  util::AsciiChart chart(opts);
  for (const auto& [name, values] : series) {
    chart.add_series(name, values);
  }
  if (threshold > 0.0) {
    chart.add_threshold("flooding threshold N", threshold);
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), chart.to_string().c_str());
}

}  // namespace syndog::bench
