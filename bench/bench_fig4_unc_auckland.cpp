// Reproduces Figure 4: outgoing SYNs vs incoming SYN/ACKs at UNC and
// Auckland — the unidirectional capture pairs, i.e. exactly the two
// counters SYN-dog's sniffers maintain at the leaf router.
#include <cstdio>

#include "common/experiment.hpp"
#include "syndog/stats/series.hpp"
#include "syndog/trace/periods.hpp"
#include "syndog/util/strings.hpp"

using namespace syndog;

namespace {

void run_site(trace::SiteId id, const char* figure) {
  const trace::SiteSpec spec = trace::site_spec(id);
  const trace::ConnectionTrace tr = trace::generate_site_trace(spec, 42);
  const trace::PeriodSeries ps =
      trace::extract_periods(tr, trace::kObservationPeriod);

  const std::vector<double> syn =
      trace::PeriodSeries::to_double(ps.out_syn);
  const std::vector<double> ack =
      trace::PeriodSeries::to_double(ps.in_syn_ack);

  bench::print_series_chart(
      std::string(figure) + " " + spec.name +
          ": outgoing SYN vs incoming SYN/ACK per 20 s period",
      {{"Outgoing SYN", syn}, {"Incoming SYN/ACK", ack}},
      "time (" + util::format_double(spec.duration.to_minutes(), 0) +
          " minutes total)");

  std::printf(
      "  Outgoing SYN:     mean %.1f  min %.0f  max %.0f per period\n"
      "  Incoming SYN/ACK: mean %.1f  min %.0f  max %.0f per period\n"
      "  Pearson correlation = %.4f\n",
      stats::series_mean(syn), stats::series_min(syn),
      stats::series_max(syn), stats::series_mean(ack),
      stats::series_min(ack), stats::series_max(ack),
      stats::pearson_correlation(syn, ack));
}

}  // namespace

int main() {
  bench::print_header(
      "fig4_unc_auckland",
      "Figure 4 -- outgoing SYN / incoming SYN-ACK dynamics at UNC and "
      "Auckland",
      "Fig. 4(a): UNC ~1500-2500 pkts/period; Fig. 4(b): Auckland "
      "~100-400; consistent synchronization in both");
  run_site(trace::SiteId::kUnc, "Fig. 4(a)");
  run_site(trace::SiteId::kAuckland, "Fig. 4(b)");
  return 0;
}
