file(REMOVE_RECURSE
  "CMakeFiles/rule_text_test.dir/rule_text_test.cpp.o"
  "CMakeFiles/rule_text_test.dir/rule_text_test.cpp.o.d"
  "rule_text_test"
  "rule_text_test.pdb"
  "rule_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
