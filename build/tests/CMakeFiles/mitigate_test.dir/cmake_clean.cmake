file(REMOVE_RECURSE
  "CMakeFiles/mitigate_test.dir/mitigate_test.cpp.o"
  "CMakeFiles/mitigate_test.dir/mitigate_test.cpp.o.d"
  "mitigate_test"
  "mitigate_test.pdb"
  "mitigate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
