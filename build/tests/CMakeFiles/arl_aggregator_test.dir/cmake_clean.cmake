file(REMOVE_RECURSE
  "CMakeFiles/arl_aggregator_test.dir/arl_aggregator_test.cpp.o"
  "CMakeFiles/arl_aggregator_test.dir/arl_aggregator_test.cpp.o.d"
  "arl_aggregator_test"
  "arl_aggregator_test.pdb"
  "arl_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arl_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
