# Empty compiler generated dependencies file for arl_aggregator_test.
# This may be replaced when dependencies are built.
