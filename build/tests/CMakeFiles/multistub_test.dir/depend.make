# Empty dependencies file for multistub_test.
# This may be replaced when dependencies are built.
