file(REMOVE_RECURSE
  "CMakeFiles/multistub_test.dir/multistub_test.cpp.o"
  "CMakeFiles/multistub_test.dir/multistub_test.cpp.o.d"
  "multistub_test"
  "multistub_test.pdb"
  "multistub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
