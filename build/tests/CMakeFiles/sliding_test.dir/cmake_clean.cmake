file(REMOVE_RECURSE
  "CMakeFiles/sliding_test.dir/sliding_test.cpp.o"
  "CMakeFiles/sliding_test.dir/sliding_test.cpp.o.d"
  "sliding_test"
  "sliding_test.pdb"
  "sliding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
