# Empty compiler generated dependencies file for syndog_attack.
# This may be replaced when dependencies are built.
