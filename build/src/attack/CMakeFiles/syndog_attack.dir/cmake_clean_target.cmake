file(REMOVE_RECURSE
  "libsyndog_attack.a"
)
