file(REMOVE_RECURSE
  "CMakeFiles/syndog_attack.dir/campaign.cpp.o"
  "CMakeFiles/syndog_attack.dir/campaign.cpp.o.d"
  "CMakeFiles/syndog_attack.dir/flood.cpp.o"
  "CMakeFiles/syndog_attack.dir/flood.cpp.o.d"
  "libsyndog_attack.a"
  "libsyndog_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
