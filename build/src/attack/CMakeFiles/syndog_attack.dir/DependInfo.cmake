
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/campaign.cpp" "src/attack/CMakeFiles/syndog_attack.dir/campaign.cpp.o" "gcc" "src/attack/CMakeFiles/syndog_attack.dir/campaign.cpp.o.d"
  "/root/repo/src/attack/flood.cpp" "src/attack/CMakeFiles/syndog_attack.dir/flood.cpp.o" "gcc" "src/attack/CMakeFiles/syndog_attack.dir/flood.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
