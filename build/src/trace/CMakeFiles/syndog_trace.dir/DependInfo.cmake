
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/arrivals.cpp" "src/trace/CMakeFiles/syndog_trace.dir/arrivals.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/arrivals.cpp.o.d"
  "/root/repo/src/trace/calibrate.cpp" "src/trace/CMakeFiles/syndog_trace.dir/calibrate.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/calibrate.cpp.o.d"
  "/root/repo/src/trace/handshake.cpp" "src/trace/CMakeFiles/syndog_trace.dir/handshake.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/handshake.cpp.o.d"
  "/root/repo/src/trace/periods.cpp" "src/trace/CMakeFiles/syndog_trace.dir/periods.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/periods.cpp.o.d"
  "/root/repo/src/trace/render.cpp" "src/trace/CMakeFiles/syndog_trace.dir/render.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/render.cpp.o.d"
  "/root/repo/src/trace/site.cpp" "src/trace/CMakeFiles/syndog_trace.dir/site.cpp.o" "gcc" "src/trace/CMakeFiles/syndog_trace.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/syndog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/syndog_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
