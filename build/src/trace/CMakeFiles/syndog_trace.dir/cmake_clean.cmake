file(REMOVE_RECURSE
  "CMakeFiles/syndog_trace.dir/arrivals.cpp.o"
  "CMakeFiles/syndog_trace.dir/arrivals.cpp.o.d"
  "CMakeFiles/syndog_trace.dir/calibrate.cpp.o"
  "CMakeFiles/syndog_trace.dir/calibrate.cpp.o.d"
  "CMakeFiles/syndog_trace.dir/handshake.cpp.o"
  "CMakeFiles/syndog_trace.dir/handshake.cpp.o.d"
  "CMakeFiles/syndog_trace.dir/periods.cpp.o"
  "CMakeFiles/syndog_trace.dir/periods.cpp.o.d"
  "CMakeFiles/syndog_trace.dir/render.cpp.o"
  "CMakeFiles/syndog_trace.dir/render.cpp.o.d"
  "CMakeFiles/syndog_trace.dir/site.cpp.o"
  "CMakeFiles/syndog_trace.dir/site.cpp.o.d"
  "libsyndog_trace.a"
  "libsyndog_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
