# Empty dependencies file for syndog_trace.
# This may be replaced when dependencies are built.
