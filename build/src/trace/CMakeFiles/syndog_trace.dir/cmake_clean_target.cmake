file(REMOVE_RECURSE
  "libsyndog_trace.a"
)
