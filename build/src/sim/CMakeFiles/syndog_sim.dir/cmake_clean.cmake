file(REMOVE_RECURSE
  "CMakeFiles/syndog_sim.dir/cloud.cpp.o"
  "CMakeFiles/syndog_sim.dir/cloud.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/link.cpp.o"
  "CMakeFiles/syndog_sim.dir/link.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/multistub.cpp.o"
  "CMakeFiles/syndog_sim.dir/multistub.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/network.cpp.o"
  "CMakeFiles/syndog_sim.dir/network.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/router.cpp.o"
  "CMakeFiles/syndog_sim.dir/router.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/scheduler.cpp.o"
  "CMakeFiles/syndog_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/syndog_sim.dir/tcp_host.cpp.o"
  "CMakeFiles/syndog_sim.dir/tcp_host.cpp.o.d"
  "libsyndog_sim.a"
  "libsyndog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
