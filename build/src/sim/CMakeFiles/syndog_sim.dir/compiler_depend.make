# Empty compiler generated dependencies file for syndog_sim.
# This may be replaced when dependencies are built.
