
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cloud.cpp" "src/sim/CMakeFiles/syndog_sim.dir/cloud.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/cloud.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/syndog_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/multistub.cpp" "src/sim/CMakeFiles/syndog_sim.dir/multistub.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/multistub.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/syndog_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/router.cpp" "src/sim/CMakeFiles/syndog_sim.dir/router.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/router.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/syndog_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/tcp_host.cpp" "src/sim/CMakeFiles/syndog_sim.dir/tcp_host.cpp.o" "gcc" "src/sim/CMakeFiles/syndog_sim.dir/tcp_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/syndog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
