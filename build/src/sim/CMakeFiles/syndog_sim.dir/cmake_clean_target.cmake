file(REMOVE_RECURSE
  "libsyndog_sim.a"
)
