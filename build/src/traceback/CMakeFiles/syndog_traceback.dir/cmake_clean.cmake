file(REMOVE_RECURSE
  "CMakeFiles/syndog_traceback.dir/ppm.cpp.o"
  "CMakeFiles/syndog_traceback.dir/ppm.cpp.o.d"
  "CMakeFiles/syndog_traceback.dir/spie.cpp.o"
  "CMakeFiles/syndog_traceback.dir/spie.cpp.o.d"
  "CMakeFiles/syndog_traceback.dir/topology.cpp.o"
  "CMakeFiles/syndog_traceback.dir/topology.cpp.o.d"
  "libsyndog_traceback.a"
  "libsyndog_traceback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
