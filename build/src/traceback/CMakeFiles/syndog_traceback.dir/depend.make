# Empty dependencies file for syndog_traceback.
# This may be replaced when dependencies are built.
