file(REMOVE_RECURSE
  "libsyndog_traceback.a"
)
