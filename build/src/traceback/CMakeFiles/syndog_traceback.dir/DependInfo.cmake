
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traceback/ppm.cpp" "src/traceback/CMakeFiles/syndog_traceback.dir/ppm.cpp.o" "gcc" "src/traceback/CMakeFiles/syndog_traceback.dir/ppm.cpp.o.d"
  "/root/repo/src/traceback/spie.cpp" "src/traceback/CMakeFiles/syndog_traceback.dir/spie.cpp.o" "gcc" "src/traceback/CMakeFiles/syndog_traceback.dir/spie.cpp.o.d"
  "/root/repo/src/traceback/topology.cpp" "src/traceback/CMakeFiles/syndog_traceback.dir/topology.cpp.o" "gcc" "src/traceback/CMakeFiles/syndog_traceback.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
