# CMake generated Testfile for 
# Source directory: /root/repo/src/traceback
# Build directory: /root/repo/build/src/traceback
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
