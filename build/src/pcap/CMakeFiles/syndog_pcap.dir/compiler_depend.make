# Empty compiler generated dependencies file for syndog_pcap.
# This may be replaced when dependencies are built.
