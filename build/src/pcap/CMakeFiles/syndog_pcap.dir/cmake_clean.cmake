file(REMOVE_RECURSE
  "CMakeFiles/syndog_pcap.dir/pcap.cpp.o"
  "CMakeFiles/syndog_pcap.dir/pcap.cpp.o.d"
  "CMakeFiles/syndog_pcap.dir/pcapng.cpp.o"
  "CMakeFiles/syndog_pcap.dir/pcapng.cpp.o.d"
  "libsyndog_pcap.a"
  "libsyndog_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
