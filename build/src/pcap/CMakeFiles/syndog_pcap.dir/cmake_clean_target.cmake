file(REMOVE_RECURSE
  "libsyndog_pcap.a"
)
