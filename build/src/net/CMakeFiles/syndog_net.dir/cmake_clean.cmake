file(REMOVE_RECURSE
  "CMakeFiles/syndog_net.dir/address.cpp.o"
  "CMakeFiles/syndog_net.dir/address.cpp.o.d"
  "CMakeFiles/syndog_net.dir/headers.cpp.o"
  "CMakeFiles/syndog_net.dir/headers.cpp.o.d"
  "CMakeFiles/syndog_net.dir/packet.cpp.o"
  "CMakeFiles/syndog_net.dir/packet.cpp.o.d"
  "CMakeFiles/syndog_net.dir/wire.cpp.o"
  "CMakeFiles/syndog_net.dir/wire.cpp.o.d"
  "libsyndog_net.a"
  "libsyndog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
