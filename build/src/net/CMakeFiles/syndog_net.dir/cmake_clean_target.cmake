file(REMOVE_RECURSE
  "libsyndog_net.a"
)
