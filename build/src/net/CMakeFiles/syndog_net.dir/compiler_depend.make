# Empty compiler generated dependencies file for syndog_net.
# This may be replaced when dependencies are built.
