# Empty compiler generated dependencies file for syndog_stats.
# This may be replaced when dependencies are built.
