file(REMOVE_RECURSE
  "libsyndog_stats.a"
)
