
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/syndog_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/syndog_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/online.cpp" "src/stats/CMakeFiles/syndog_stats.dir/online.cpp.o" "gcc" "src/stats/CMakeFiles/syndog_stats.dir/online.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/syndog_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/syndog_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/series.cpp" "src/stats/CMakeFiles/syndog_stats.dir/series.cpp.o" "gcc" "src/stats/CMakeFiles/syndog_stats.dir/series.cpp.o.d"
  "/root/repo/src/stats/sliding.cpp" "src/stats/CMakeFiles/syndog_stats.dir/sliding.cpp.o" "gcc" "src/stats/CMakeFiles/syndog_stats.dir/sliding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
