file(REMOVE_RECURSE
  "CMakeFiles/syndog_stats.dir/histogram.cpp.o"
  "CMakeFiles/syndog_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/syndog_stats.dir/online.cpp.o"
  "CMakeFiles/syndog_stats.dir/online.cpp.o.d"
  "CMakeFiles/syndog_stats.dir/quantile.cpp.o"
  "CMakeFiles/syndog_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/syndog_stats.dir/series.cpp.o"
  "CMakeFiles/syndog_stats.dir/series.cpp.o.d"
  "CMakeFiles/syndog_stats.dir/sliding.cpp.o"
  "CMakeFiles/syndog_stats.dir/sliding.cpp.o.d"
  "libsyndog_stats.a"
  "libsyndog_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
