# Empty dependencies file for syndog_classify.
# This may be replaced when dependencies are built.
