file(REMOVE_RECURSE
  "libsyndog_classify.a"
)
