
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/engines.cpp" "src/classify/CMakeFiles/syndog_classify.dir/engines.cpp.o" "gcc" "src/classify/CMakeFiles/syndog_classify.dir/engines.cpp.o.d"
  "/root/repo/src/classify/rule.cpp" "src/classify/CMakeFiles/syndog_classify.dir/rule.cpp.o" "gcc" "src/classify/CMakeFiles/syndog_classify.dir/rule.cpp.o.d"
  "/root/repo/src/classify/rule_text.cpp" "src/classify/CMakeFiles/syndog_classify.dir/rule_text.cpp.o" "gcc" "src/classify/CMakeFiles/syndog_classify.dir/rule_text.cpp.o.d"
  "/root/repo/src/classify/segment.cpp" "src/classify/CMakeFiles/syndog_classify.dir/segment.cpp.o" "gcc" "src/classify/CMakeFiles/syndog_classify.dir/segment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/syndog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
