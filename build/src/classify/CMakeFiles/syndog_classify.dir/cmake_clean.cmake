file(REMOVE_RECURSE
  "CMakeFiles/syndog_classify.dir/engines.cpp.o"
  "CMakeFiles/syndog_classify.dir/engines.cpp.o.d"
  "CMakeFiles/syndog_classify.dir/rule.cpp.o"
  "CMakeFiles/syndog_classify.dir/rule.cpp.o.d"
  "CMakeFiles/syndog_classify.dir/rule_text.cpp.o"
  "CMakeFiles/syndog_classify.dir/rule_text.cpp.o.d"
  "CMakeFiles/syndog_classify.dir/segment.cpp.o"
  "CMakeFiles/syndog_classify.dir/segment.cpp.o.d"
  "libsyndog_classify.a"
  "libsyndog_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
