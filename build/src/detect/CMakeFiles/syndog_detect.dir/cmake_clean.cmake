file(REMOVE_RECURSE
  "CMakeFiles/syndog_detect.dir/arl.cpp.o"
  "CMakeFiles/syndog_detect.dir/arl.cpp.o.d"
  "CMakeFiles/syndog_detect.dir/charts.cpp.o"
  "CMakeFiles/syndog_detect.dir/charts.cpp.o.d"
  "CMakeFiles/syndog_detect.dir/cusum.cpp.o"
  "CMakeFiles/syndog_detect.dir/cusum.cpp.o.d"
  "CMakeFiles/syndog_detect.dir/evaluator.cpp.o"
  "CMakeFiles/syndog_detect.dir/evaluator.cpp.o.d"
  "CMakeFiles/syndog_detect.dir/glr.cpp.o"
  "CMakeFiles/syndog_detect.dir/glr.cpp.o.d"
  "CMakeFiles/syndog_detect.dir/shiryaev.cpp.o"
  "CMakeFiles/syndog_detect.dir/shiryaev.cpp.o.d"
  "libsyndog_detect.a"
  "libsyndog_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
