# Empty dependencies file for syndog_detect.
# This may be replaced when dependencies are built.
