
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/arl.cpp" "src/detect/CMakeFiles/syndog_detect.dir/arl.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/arl.cpp.o.d"
  "/root/repo/src/detect/charts.cpp" "src/detect/CMakeFiles/syndog_detect.dir/charts.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/charts.cpp.o.d"
  "/root/repo/src/detect/cusum.cpp" "src/detect/CMakeFiles/syndog_detect.dir/cusum.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/cusum.cpp.o.d"
  "/root/repo/src/detect/evaluator.cpp" "src/detect/CMakeFiles/syndog_detect.dir/evaluator.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/evaluator.cpp.o.d"
  "/root/repo/src/detect/glr.cpp" "src/detect/CMakeFiles/syndog_detect.dir/glr.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/glr.cpp.o.d"
  "/root/repo/src/detect/shiryaev.cpp" "src/detect/CMakeFiles/syndog_detect.dir/shiryaev.cpp.o" "gcc" "src/detect/CMakeFiles/syndog_detect.dir/shiryaev.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/syndog_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
