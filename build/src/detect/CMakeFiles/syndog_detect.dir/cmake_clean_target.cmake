file(REMOVE_RECURSE
  "libsyndog_detect.a"
)
