file(REMOVE_RECURSE
  "CMakeFiles/syndog_core.dir/adaptive.cpp.o"
  "CMakeFiles/syndog_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/syndog_core.dir/agent.cpp.o"
  "CMakeFiles/syndog_core.dir/agent.cpp.o.d"
  "CMakeFiles/syndog_core.dir/aggregator.cpp.o"
  "CMakeFiles/syndog_core.dir/aggregator.cpp.o.d"
  "CMakeFiles/syndog_core.dir/locator.cpp.o"
  "CMakeFiles/syndog_core.dir/locator.cpp.o.d"
  "CMakeFiles/syndog_core.dir/mitigate.cpp.o"
  "CMakeFiles/syndog_core.dir/mitigate.cpp.o.d"
  "CMakeFiles/syndog_core.dir/syndog.cpp.o"
  "CMakeFiles/syndog_core.dir/syndog.cpp.o.d"
  "libsyndog_core.a"
  "libsyndog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
