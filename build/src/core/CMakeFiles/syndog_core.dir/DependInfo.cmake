
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/syndog_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/syndog_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/aggregator.cpp" "src/core/CMakeFiles/syndog_core.dir/aggregator.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/aggregator.cpp.o.d"
  "/root/repo/src/core/locator.cpp" "src/core/CMakeFiles/syndog_core.dir/locator.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/locator.cpp.o.d"
  "/root/repo/src/core/mitigate.cpp" "src/core/CMakeFiles/syndog_core.dir/mitigate.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/mitigate.cpp.o.d"
  "/root/repo/src/core/syndog.cpp" "src/core/CMakeFiles/syndog_core.dir/syndog.cpp.o" "gcc" "src/core/CMakeFiles/syndog_core.dir/syndog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/syndog_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/syndog_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/syndog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syndog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/syndog_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
