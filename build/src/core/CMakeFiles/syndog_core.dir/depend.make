# Empty dependencies file for syndog_core.
# This may be replaced when dependencies are built.
