file(REMOVE_RECURSE
  "libsyndog_core.a"
)
