file(REMOVE_RECURSE
  "libsyndog_util.a"
)
