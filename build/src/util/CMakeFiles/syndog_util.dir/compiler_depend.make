# Empty compiler generated dependencies file for syndog_util.
# This may be replaced when dependencies are built.
