file(REMOVE_RECURSE
  "CMakeFiles/syndog_util.dir/config.cpp.o"
  "CMakeFiles/syndog_util.dir/config.cpp.o.d"
  "CMakeFiles/syndog_util.dir/logging.cpp.o"
  "CMakeFiles/syndog_util.dir/logging.cpp.o.d"
  "CMakeFiles/syndog_util.dir/rng.cpp.o"
  "CMakeFiles/syndog_util.dir/rng.cpp.o.d"
  "CMakeFiles/syndog_util.dir/strings.cpp.o"
  "CMakeFiles/syndog_util.dir/strings.cpp.o.d"
  "CMakeFiles/syndog_util.dir/table.cpp.o"
  "CMakeFiles/syndog_util.dir/table.cpp.o.d"
  "CMakeFiles/syndog_util.dir/time.cpp.o"
  "CMakeFiles/syndog_util.dir/time.cpp.o.d"
  "libsyndog_util.a"
  "libsyndog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
