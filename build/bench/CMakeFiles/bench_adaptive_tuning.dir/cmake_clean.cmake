file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_tuning.dir/bench_adaptive_tuning.cpp.o"
  "CMakeFiles/bench_adaptive_tuning.dir/bench_adaptive_tuning.cpp.o.d"
  "bench_adaptive_tuning"
  "bench_adaptive_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
