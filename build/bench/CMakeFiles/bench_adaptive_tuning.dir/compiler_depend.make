# Empty compiler generated dependencies file for bench_adaptive_tuning.
# This may be replaced when dependencies are built.
