file(REMOVE_RECURSE
  "CMakeFiles/bench_traceback_comparison.dir/bench_traceback_comparison.cpp.o"
  "CMakeFiles/bench_traceback_comparison.dir/bench_traceback_comparison.cpp.o.d"
  "bench_traceback_comparison"
  "bench_traceback_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traceback_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
