# Empty dependencies file for bench_traceback_comparison.
# This may be replaced when dependencies are built.
