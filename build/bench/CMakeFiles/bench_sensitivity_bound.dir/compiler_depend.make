# Empty compiler generated dependencies file for bench_sensitivity_bound.
# This may be replaced when dependencies are built.
