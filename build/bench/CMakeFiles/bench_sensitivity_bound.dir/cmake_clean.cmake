file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_bound.dir/bench_sensitivity_bound.cpp.o"
  "CMakeFiles/bench_sensitivity_bound.dir/bench_sensitivity_bound.cpp.o.d"
  "bench_sensitivity_bound"
  "bench_sensitivity_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
