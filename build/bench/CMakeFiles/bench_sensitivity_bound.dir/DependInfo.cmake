
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sensitivity_bound.cpp" "bench/CMakeFiles/bench_sensitivity_bound.dir/bench_sensitivity_bound.cpp.o" "gcc" "bench/CMakeFiles/bench_sensitivity_bound.dir/bench_sensitivity_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/syndog_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/syndog_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/syndog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/syndog_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/syndog_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syndog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/syndog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/syndog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/syndog_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/syndog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
