# Empty compiler generated dependencies file for syndog_bench_common.
# This may be replaced when dependencies are built.
