file(REMOVE_RECURSE
  "libsyndog_bench_common.a"
)
