file(REMOVE_RECURSE
  "CMakeFiles/syndog_bench_common.dir/common/experiment.cpp.o"
  "CMakeFiles/syndog_bench_common.dir/common/experiment.cpp.o.d"
  "libsyndog_bench_common.a"
  "libsyndog_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
