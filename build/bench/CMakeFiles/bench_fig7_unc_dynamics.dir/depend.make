# Empty dependencies file for bench_fig7_unc_dynamics.
# This may be replaced when dependencies are built.
