# Empty compiler generated dependencies file for bench_fig5_normal_cusum.
# This may be replaced when dependencies are built.
