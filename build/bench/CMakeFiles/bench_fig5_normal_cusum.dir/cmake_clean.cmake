file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_normal_cusum.dir/bench_fig5_normal_cusum.cpp.o"
  "CMakeFiles/bench_fig5_normal_cusum.dir/bench_fig5_normal_cusum.cpp.o.d"
  "bench_fig5_normal_cusum"
  "bench_fig5_normal_cusum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_normal_cusum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
