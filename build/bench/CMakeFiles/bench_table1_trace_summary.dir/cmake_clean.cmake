file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_trace_summary.dir/bench_table1_trace_summary.cpp.o"
  "CMakeFiles/bench_table1_trace_summary.dir/bench_table1_trace_summary.cpp.o.d"
  "bench_table1_trace_summary"
  "bench_table1_trace_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_trace_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
