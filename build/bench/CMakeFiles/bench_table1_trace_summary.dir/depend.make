# Empty dependencies file for bench_table1_trace_summary.
# This may be replaced when dependencies are built.
