# Empty compiler generated dependencies file for bench_fig8_auckland_dynamics.
# This may be replaced when dependencies are built.
