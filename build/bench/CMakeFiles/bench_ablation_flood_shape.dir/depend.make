# Empty dependencies file for bench_ablation_flood_shape.
# This may be replaced when dependencies are built.
