# Empty compiler generated dependencies file for bench_ablation_arrival_model.
# This may be replaced when dependencies are built.
