# Empty dependencies file for bench_multistub_campaign.
# This may be replaced when dependencies are built.
