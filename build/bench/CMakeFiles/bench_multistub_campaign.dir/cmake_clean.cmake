file(REMOVE_RECURSE
  "CMakeFiles/bench_multistub_campaign.dir/bench_multistub_campaign.cpp.o"
  "CMakeFiles/bench_multistub_campaign.dir/bench_multistub_campaign.cpp.o.d"
  "bench_multistub_campaign"
  "bench_multistub_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multistub_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
