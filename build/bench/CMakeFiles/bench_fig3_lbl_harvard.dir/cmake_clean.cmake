file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lbl_harvard.dir/bench_fig3_lbl_harvard.cpp.o"
  "CMakeFiles/bench_fig3_lbl_harvard.dir/bench_fig3_lbl_harvard.cpp.o.d"
  "bench_fig3_lbl_harvard"
  "bench_fig3_lbl_harvard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lbl_harvard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
