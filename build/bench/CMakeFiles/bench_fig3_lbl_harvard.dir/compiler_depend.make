# Empty compiler generated dependencies file for bench_fig3_lbl_harvard.
# This may be replaced when dependencies are built.
