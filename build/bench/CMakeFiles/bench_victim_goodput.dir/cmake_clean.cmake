file(REMOVE_RECURSE
  "CMakeFiles/bench_victim_goodput.dir/bench_victim_goodput.cpp.o"
  "CMakeFiles/bench_victim_goodput.dir/bench_victim_goodput.cpp.o.d"
  "bench_victim_goodput"
  "bench_victim_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_victim_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
