# Empty compiler generated dependencies file for bench_table2_unc_detection.
# This may be replaced when dependencies are built.
