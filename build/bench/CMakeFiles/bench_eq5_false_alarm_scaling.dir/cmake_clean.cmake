file(REMOVE_RECURSE
  "CMakeFiles/bench_eq5_false_alarm_scaling.dir/bench_eq5_false_alarm_scaling.cpp.o"
  "CMakeFiles/bench_eq5_false_alarm_scaling.dir/bench_eq5_false_alarm_scaling.cpp.o.d"
  "bench_eq5_false_alarm_scaling"
  "bench_eq5_false_alarm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq5_false_alarm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
