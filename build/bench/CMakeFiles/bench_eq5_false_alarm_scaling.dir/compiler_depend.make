# Empty compiler generated dependencies file for bench_eq5_false_alarm_scaling.
# This may be replaced when dependencies are built.
