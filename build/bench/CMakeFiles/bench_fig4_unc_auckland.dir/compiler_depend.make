# Empty compiler generated dependencies file for bench_fig4_unc_auckland.
# This may be replaced when dependencies are built.
