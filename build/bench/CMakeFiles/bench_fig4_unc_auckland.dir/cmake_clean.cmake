file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_unc_auckland.dir/bench_fig4_unc_auckland.cpp.o"
  "CMakeFiles/bench_fig4_unc_auckland.dir/bench_fig4_unc_auckland.cpp.o.d"
  "bench_fig4_unc_auckland"
  "bench_fig4_unc_auckland.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_unc_auckland.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
