file(REMOVE_RECURSE
  "CMakeFiles/bench_firstmile_vs_lastmile.dir/bench_firstmile_vs_lastmile.cpp.o"
  "CMakeFiles/bench_firstmile_vs_lastmile.dir/bench_firstmile_vs_lastmile.cpp.o.d"
  "bench_firstmile_vs_lastmile"
  "bench_firstmile_vs_lastmile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_firstmile_vs_lastmile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
