# Empty dependencies file for bench_firstmile_vs_lastmile.
# This may be replaced when dependencies are built.
