file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tuned_sensitivity.dir/bench_fig9_tuned_sensitivity.cpp.o"
  "CMakeFiles/bench_fig9_tuned_sensitivity.dir/bench_fig9_tuned_sensitivity.cpp.o.d"
  "bench_fig9_tuned_sensitivity"
  "bench_fig9_tuned_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tuned_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
