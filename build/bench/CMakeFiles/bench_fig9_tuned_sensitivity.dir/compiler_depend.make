# Empty compiler generated dependencies file for bench_fig9_tuned_sensitivity.
# This may be replaced when dependencies are built.
