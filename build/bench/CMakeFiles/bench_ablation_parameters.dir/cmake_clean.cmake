file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parameters.dir/bench_ablation_parameters.cpp.o"
  "CMakeFiles/bench_ablation_parameters.dir/bench_ablation_parameters.cpp.o.d"
  "bench_ablation_parameters"
  "bench_ablation_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
