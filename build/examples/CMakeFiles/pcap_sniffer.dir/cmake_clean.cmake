file(REMOVE_RECURSE
  "CMakeFiles/pcap_sniffer.dir/pcap_sniffer.cpp.o"
  "CMakeFiles/pcap_sniffer.dir/pcap_sniffer.cpp.o.d"
  "pcap_sniffer"
  "pcap_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
