# Empty dependencies file for pcap_sniffer.
# This may be replaced when dependencies are built.
