# Empty compiler generated dependencies file for ddos_campaign.
# This may be replaced when dependencies are built.
