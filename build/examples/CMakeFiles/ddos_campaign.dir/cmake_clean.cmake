file(REMOVE_RECURSE
  "CMakeFiles/ddos_campaign.dir/ddos_campaign.cpp.o"
  "CMakeFiles/ddos_campaign.dir/ddos_campaign.cpp.o.d"
  "ddos_campaign"
  "ddos_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
