# Empty dependencies file for leaf_router_sim.
# This may be replaced when dependencies are built.
