file(REMOVE_RECURSE
  "CMakeFiles/leaf_router_sim.dir/leaf_router_sim.cpp.o"
  "CMakeFiles/leaf_router_sim.dir/leaf_router_sim.cpp.o.d"
  "leaf_router_sim"
  "leaf_router_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_router_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
