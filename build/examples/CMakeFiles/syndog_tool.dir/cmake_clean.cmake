file(REMOVE_RECURSE
  "CMakeFiles/syndog_tool.dir/syndog_tool.cpp.o"
  "CMakeFiles/syndog_tool.dir/syndog_tool.cpp.o.d"
  "syndog_tool"
  "syndog_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndog_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
