# Empty compiler generated dependencies file for syndog_tool.
# This may be replaced when dependencies are built.
